"""Topology providers: synthetic and data-driven exchange construction.

The ROADMAP's "Internet-realistic topology ingestion" item: instead of
inventing membership shapes with knobs, a :class:`TopologyProvider`
derives the exchange — IXP membership, per-AS prefix skew, multihoming
and the peering matrix — from *data*, and every provider yields the
same :class:`~repro.workloads.topology_gen.SyntheticIXP` record the
rest of the stack (experiments, scenario suites, benchmarks) already
consumes.

Two data formats are ingested, both as checked-in fixture snapshots
(no network access, mirroring the netsys-lab ``GMLDataProvider``
pattern):

* **CAIDA AS-relationship** (serial-1 ``as1|as2|rel`` lines, ``rel``
  -1 for provider→customer and 0 for peer-to-peer) paired with a
  ``.members`` census — aggregated from a pfx2as-style snapshot into
  ``asn|prefixes|ports`` rows.  The AS graph gives the peering matrix
  and multihoming (an AS's member providers re-announce its prefixes
  with a longer AS path); the census gives membership and the real
  prefix skew.
* **GML** graphs whose nodes carry ``asn`` / ``prefixes`` / ``ports``
  attributes and whose edges carry ``rel`` (``"p2c"``/``"p2p"``).

Data-driven construction is fully deterministic — no RNG anywhere —
so fixture digests are byte-stable across runs, processes, and
backends (see ``tests/property/test_workload_determinism.py``).
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

try:  # Protocol is typing-only; 3.9+ has it in typing
    from typing import Protocol
except ImportError:  # pragma: no cover - pre-3.8 fallback
    Protocol = object  # type: ignore[assignment]

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix
from repro.workloads.prefixes import allocate_prefix_pool, skew_summary
from repro.workloads.topology_gen import (
    ASCategory,
    PORTS_PER_PARTICIPANT,
    SyntheticIXP,
    generate_ixp,
    peering_lan_ports,
)

__all__ = [
    "ASRelationshipProvider",
    "GMLProvider",
    "MemberRecord",
    "SyntheticProvider",
    "TopologyProvider",
    "available_fixtures",
    "fixture_path",
    "load_fixture",
]

#: Directory holding the checked-in fixture snapshots.
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

#: Prefix pools by census size: the /8 used everywhere else, widened to
#: a /7 for censuses beyond 65,536 /24s (the acceptance fixture carries
#: a 100k+ prefix table).
_POOL_SMALL = IPv4Prefix("10.0.0.0/8")
_POOL_LARGE = IPv4Prefix("10.0.0.0/7")


class TopologyProvider(Protocol):
    """Anything that can build a loaded exchange.

    The existing synthetic generator and the data-driven ingesters both
    satisfy this; experiment drivers accept any of them.
    """

    name: str

    def build(self) -> SyntheticIXP:  # pragma: no cover - protocol
        """Construct the exchange (deterministic per provider instance)."""
        ...


class SyntheticProvider:
    """The §6.1 synthetic generator behind the provider interface."""

    def __init__(
        self,
        participants: int,
        total_prefixes: int,
        seed: int = 0,
        **knobs,
    ) -> None:
        self.name = f"synthetic-{participants}x{total_prefixes}-s{seed}"
        self._participants = participants
        self._total_prefixes = total_prefixes
        self._seed = seed
        self._knobs = knobs

    def build(self) -> SyntheticIXP:
        return generate_ixp(
            self._participants, self._total_prefixes, seed=self._seed, **self._knobs
        )


class MemberRecord(NamedTuple):
    """One ``asn|prefixes|ports`` census row."""

    asn: int
    prefixes: int
    ports: int


def _parse_members(path: str) -> List[MemberRecord]:
    """Parse an ``asn|prefixes|ports`` census snapshot."""
    members: List[MemberRecord] = []
    seen: Set[int] = set()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 'asn|prefixes|ports', got {line!r}"
                )
            asn, prefixes, ports = (int(part) for part in parts)
            if asn in seen:
                raise ValueError(f"{path}:{line_no}: duplicate ASN {asn}")
            if prefixes < 0 or not 1 <= ports <= PORTS_PER_PARTICIPANT:
                raise ValueError(f"{path}:{line_no}: invalid census row {line!r}")
            seen.add(asn)
            members.append(MemberRecord(asn, prefixes, ports))
    if not members:
        raise ValueError(f"{path}: empty membership census")
    return members


def _parse_asrel(path: str) -> List[Tuple[int, int, int]]:
    """Parse CAIDA serial-1 AS-relationship rows ``as1|as2|rel``."""
    edges: List[Tuple[int, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 'as1|as2|rel', got {line!r}"
                )
            as1, as2, rel = int(parts[0]), int(parts[1]), int(parts[2])
            if rel not in (-1, 0):
                raise ValueError(
                    f"{path}:{line_no}: relationship must be -1 (p2c) or 0 (p2p)"
                )
            edges.append((as1, as2, rel))
    return edges


class _DataTopology:
    """Shared data→exchange derivation for both fixture formats."""

    def __init__(
        self,
        name: str,
        members: Sequence[MemberRecord],
        p2c_edges: Sequence[Tuple[int, int]],  # (provider, customer)
        p2p_edges: Sequence[Tuple[int, int]],
        labels: Optional[Dict[int, str]] = None,
        vnh_pool: str = "172.16.0.0/12",
    ) -> None:
        self.name = name
        self._members = list(members)
        self._labels = dict(labels or {})
        member_asns = {record.asn for record in self._members}
        # Only edges between two members shape the exchange; off-IXP
        # neighbours in the raw graph are ignored.
        self._providers_of: Dict[int, List[int]] = {
            record.asn: [] for record in self._members
        }
        self._peers_of: Dict[int, Set[int]] = {
            record.asn: set() for record in self._members
        }
        for provider, customer in p2c_edges:
            if provider in member_asns and customer in member_asns:
                self._providers_of[customer].append(provider)
                self._peers_of[provider].add(customer)
                self._peers_of[customer].add(provider)
        for left, right in p2p_edges:
            if left in member_asns and right in member_asns:
                self._peers_of[left].add(right)
                self._peers_of[right].add(left)
        for providers in self._providers_of.values():
            providers.sort()
        self._vnh_pool = vnh_pool

    def _label(self, asn: int) -> str:
        return self._labels.get(asn, f"AS{asn}")

    def _categories(self) -> Dict[int, str]:
        """Classify members from the data, not from knobs.

        Transit: the AS provides transit to at least one other member
        (it has customer edges).  The remaining stubs split on their
        announced footprint: the top quartile of stub prefix counts is
        *content* (hosting/CDN-shaped heavy announcers), the rest
        *eyeball*.
        """
        customers_of: Dict[int, int] = {record.asn: 0 for record in self._members}
        for customer, providers in self._providers_of.items():
            for provider in providers:
                customers_of[provider] += 1
        stub_counts = sorted(
            record.prefixes
            for record in self._members
            if customers_of[record.asn] == 0
        )
        if stub_counts:
            threshold = stub_counts[(3 * len(stub_counts)) // 4]
        else:  # pragma: no cover - all-transit census
            threshold = 0
        categories: Dict[int, str] = {}
        for record in self._members:
            if customers_of[record.asn] > 0:
                categories[record.asn] = ASCategory.TRANSIT
            elif record.prefixes >= max(1, threshold):
                categories[record.asn] = ASCategory.CONTENT
            else:
                categories[record.asn] = ASCategory.EYEBALL
        return categories

    def build(self) -> SyntheticIXP:
        total = sum(record.prefixes for record in self._members)
        root = _POOL_SMALL if total <= 65536 else _POOL_LARGE
        pool = allocate_prefix_pool(total, root=root)
        config = IXPConfig(vnh_pool=self._vnh_pool, name=self.name)
        categories_by_asn = self._categories()

        categories: Dict[str, str] = {}
        announced: Dict[str, Tuple[IPv4Prefix, ...]] = {}
        updates: List[BGPUpdate] = []
        specs = {}
        for index, record in enumerate(self._members):
            label = self._label(record.asn)
            specs[record.asn] = config.add_participant(
                label,
                asn=record.asn,
                ports=peering_lan_ports(index, record.ports, name=label),
            )
            categories[label] = categories_by_asn[record.asn]

        cursor = 0
        secondary: Dict[str, List[Announcement]] = {}
        for record in self._members:
            label = self._label(record.asn)
            spec = specs[record.asn]
            mine = pool[cursor : cursor + record.prefixes]
            cursor += record.prefixes
            announced[label] = tuple(mine)
            primary: List[Announcement] = []
            for offset, prefix in enumerate(mine):
                port = spec.ports[offset % len(spec.ports)]
                primary.append(
                    Announcement(
                        prefix,
                        RouteAttributes(as_path=[record.asn], next_hop=port.address),
                    )
                )
            updates.append(BGPUpdate(label, announced=primary))
            # Multihoming straight from the relationship data: every
            # member *provider* of this AS re-announces its prefixes
            # with the provider's ASN prepended (the longer path keeps
            # the origin's own announcement preferred).
            for provider_asn in self._providers_of[record.asn]:
                provider_label = self._label(provider_asn)
                provider_spec = specs[provider_asn]
                backups = secondary.setdefault(provider_label, [])
                for offset, prefix in enumerate(mine):
                    port = provider_spec.ports[offset % len(provider_spec.ports)]
                    backups.append(
                        Announcement(
                            prefix,
                            RouteAttributes(
                                as_path=[provider_asn, record.asn],
                                next_hop=port.address,
                            ),
                        )
                    )
        for label in sorted(secondary):
            updates.append(BGPUpdate(label, announced=secondary[label]))

        peering = {
            self._label(record.asn): tuple(
                sorted(self._label(peer) for peer in self._peers_of[record.asn])
            )
            for record in self._members
        }
        return SyntheticIXP(
            config=config,
            categories=categories,
            announced=announced,
            updates=updates,
            seed=0,
            peering=peering,
        )

    def skew(self) -> Dict[str, float]:
        """The paper's two skew statistics, computed from the census."""
        return skew_summary([record.prefixes for record in self._members])


class ASRelationshipProvider(_DataTopology):
    """CAIDA AS-relationship + membership-census fixture ingestion.

    ``asrel_path`` holds serial-1 ``as1|as2|rel`` rows; ``members_path``
    the ``asn|prefixes|ports`` census aggregated from a pfx2as-style
    snapshot.  Membership, skew, classification, multihoming and the
    peering matrix all come from the two files.
    """

    def __init__(
        self, asrel_path: str, members_path: str, name: Optional[str] = None
    ) -> None:
        members = _parse_members(members_path)
        edges = _parse_asrel(asrel_path)
        p2c = [(as1, as2) for as1, as2, rel in edges if rel == -1]
        p2p = [(as1, as2) for as1, as2, rel in edges if rel == 0]
        super().__init__(
            name or os.path.splitext(os.path.basename(asrel_path))[0],
            members,
            p2c,
            p2p,
        )


# -- GML ----------------------------------------------------------------------

_GML_TOKEN = re.compile(r"\[|\]|\"[^\"]*\"|[^\s\[\]]+")


def _gml_parse(text: str):
    """A tolerant GML reader: nested ``key [ ... ]`` blocks into dicts.

    Repeated keys (``node``, ``edge``) accumulate into lists.  Scalars
    are int/float/str-typed by shape, quoted strings unquoted.
    """
    tokens = _GML_TOKEN.findall(text)
    position = 0

    def parse_block():
        nonlocal position
        block: Dict[str, object] = {}
        while position < len(tokens):
            token = tokens[position]
            if token == "]":
                position += 1
                return block
            key = token
            position += 1
            if position >= len(tokens):
                raise ValueError(f"GML: dangling key {key!r}")
            value_token = tokens[position]
            position += 1
            value: object
            if value_token == "[":
                value = parse_block()
            elif value_token.startswith('"'):
                value = value_token[1:-1]
            else:
                try:
                    value = int(value_token)
                except ValueError:
                    try:
                        value = float(value_token)
                    except ValueError:
                        value = value_token
            if key in block:
                existing = block[key]
                if isinstance(existing, list):
                    existing.append(value)
                else:
                    block[key] = [existing, value]
            else:
                block[key] = value
        return block

    document = parse_block()
    if "graph" not in document:
        raise ValueError("GML: no 'graph' block")
    return document["graph"]


def _as_list(value) -> List:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


class GMLProvider(_DataTopology):
    """GML fixture ingestion (netsys-lab ``GMLDataProvider`` style).

    Nodes must carry ``asn`` and ``prefixes`` (``ports`` defaults to 1,
    ``label`` to ``AS<asn>``); edges carry ``rel`` — ``"p2c"`` (source
    provides transit to target) or ``"p2p"`` (default).
    """

    def __init__(self, path: str, name: Optional[str] = None) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            graph = _gml_parse(handle.read())
        nodes = _as_list(graph.get("node"))
        edges = _as_list(graph.get("edge"))
        if not nodes:
            raise ValueError(f"{path}: GML graph has no nodes")
        asn_of_id: Dict[int, int] = {}
        members: List[MemberRecord] = []
        labels: Dict[int, str] = {}
        for node in nodes:
            if "asn" not in node or "prefixes" not in node:
                raise ValueError(
                    f"{path}: node {node.get('id')!r} needs 'asn' and 'prefixes'"
                )
            asn = int(node["asn"])
            asn_of_id[int(node["id"])] = asn
            members.append(
                MemberRecord(asn, int(node["prefixes"]), int(node.get("ports", 1)))
            )
            if "label" in node:
                labels[asn] = str(node["label"])
        p2c: List[Tuple[int, int]] = []
        p2p: List[Tuple[int, int]] = []
        for edge in edges:
            source = asn_of_id[int(edge["source"])]
            target = asn_of_id[int(edge["target"])]
            rel = str(edge.get("rel", "p2p"))
            if rel == "p2c":
                p2c.append((source, target))
            elif rel == "p2p":
                p2p.append((source, target))
            else:
                raise ValueError(f"{path}: unknown edge rel {rel!r}")
        super().__init__(
            name or os.path.splitext(os.path.basename(path))[0],
            members,
            p2c,
            p2p,
            labels=labels,
        )


# -- fixture registry ---------------------------------------------------------


def fixture_path(filename: str) -> str:
    """Absolute path of a checked-in fixture file."""
    path = os.path.join(FIXTURE_DIR, filename)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no fixture {filename!r}; available: {', '.join(available_fixtures())}"
        )
    return path


def available_fixtures() -> Tuple[str, ...]:
    """Fixture basenames (one entry per topology, not per file)."""
    names = set()
    for entry in os.listdir(FIXTURE_DIR):
        base, ext = os.path.splitext(entry)
        if ext in (".gml", ".asrel"):
            names.add(base)
    return tuple(sorted(names))


def load_fixture(name: str) -> "TopologyProvider":
    """The provider for a checked-in fixture, dispatched on file type.

    ``<name>.gml`` wins when present; otherwise the CAIDA pair
    ``<name>.asrel`` + ``<name>.members`` is loaded.
    """
    gml = os.path.join(FIXTURE_DIR, f"{name}.gml")
    if os.path.exists(gml):
        return GMLProvider(gml, name=name)
    asrel = os.path.join(FIXTURE_DIR, f"{name}.asrel")
    if os.path.exists(asrel):
        return ASRelationshipProvider(
            asrel, fixture_path(f"{name}.members"), name=name
        )
    raise FileNotFoundError(
        f"no fixture {name!r}; available: {', '.join(available_fixtures())}"
    )
