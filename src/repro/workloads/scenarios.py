"""Churn-replay scenarios: failure storms replayed through the controller.

The synthetic trace generator (:mod:`repro.workloads.update_gen`)
reproduces the *steady-state* churn statistics of §4.3.2; operators
care at least as much about the pathological episodes those statistics
average away.  This module builds three of them as deterministic,
seed-parameterised traces in the same ``UpdateTrace`` shape, so they
replay through exactly the update→compile→commit path the benchmarks
exercise:

* **failover-storm** — a heavy announcer's BGP session dies: every
  prefix it announces is withdrawn in rapid bursts, background churn
  keeps arriving from other members, and the session comes back with a
  full re-announcement wave.  Repeatable for multiple waves (flapping
  sessions).
* **stuck-routes** — a transit member leaks announcements for prefixes
  other members own (a ghost/hijack episode), the exchange carries the
  extra routes for a while, and the cleanup withdrawals arrive *late*,
  after the victims have already re-announced — the ordering that left
  stuck routes in early route-server deployments.
* **correlated-withdrawal** — members sharing an upstream lose it at
  once: correlated withdrawal waves land in the same burst across many
  sessions, then the re-announcements come back staggered, one member
  per burst.

Every generated trace satisfies the :func:`~repro.workloads.update_gen.validate_trace`
contract (no ghost withdrawals, no self-superseding same-burst
updates, monotone timestamps) — the scenarios compose withdrawals and
re-announcements against the exchange's *actual* table, which is
exactly what the generator bugfix this suite rides with makes
possible.

:func:`replay` drives a trace burst-by-burst into a controller (either
runtime), sampling the PR-5 verification oracle every few bursts so a
run asserts end-to-end dataplane correctness, not just liveness::

    ixp = load_fixture("ixp_small").build()
    controller = ...  # SDXController over ixp.config, routes loaded
    trace = build_scenario_trace(ixp, ScenarioSpec("smoke", "failover-storm", seed=3))
    report = replay(controller, trace.updates, verify_every=4)
    assert report.ok

``python -m repro.workloads.scenarios`` wraps that loop for the
``make churn-replay`` smoke gate.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.netutils.ip import IPv4Prefix
from repro.workloads.topology_gen import SyntheticIXP
from repro.workloads.update_gen import UpdateTrace, validate_trace

__all__ = [
    "SCENARIO_KINDS",
    "ReplayReport",
    "ScenarioSpec",
    "build_scenario_trace",
    "correlated_withdrawal",
    "failover_storm",
    "replay",
    "segment_bursts",
    "stuck_routes",
]

#: a gap above this starts a new arrival burst (generated inter-burst
#: gaps are >= 2 s; intra-burst spacing stays well under 1 s)
BURST_GAP_SECONDS = 1.0

SCENARIO_KINDS = ("failover-storm", "stuck-routes", "correlated-withdrawal")


class ScenarioSpec(NamedTuple):
    """A named, seeded, JSON-able description of one churn scenario.

    ``params`` tunes the builder (wave counts, burst sizes, victim
    selection); everything is plain data so specs serialize with
    :func:`repro.workloads.serialization.dumps_scenario` and replay
    identically elsewhere.
    """

    name: str
    kind: str
    seed: int = 0
    params: Dict[str, object] = {}

    def param(self, key: str, default):
        return self.params.get(key, default)


class ReplayReport(NamedTuple):
    """What happened when a scenario trace ran through a controller."""

    scenario: str
    events: int
    bursts: int
    commits: int
    verify_passes: int
    probes_checked: int
    mismatches: int
    violations: int
    seconds: float

    @property
    def ok(self) -> bool:
        """True when the oracle found no divergence and no violation."""
        return self.mismatches == 0 and self.violations == 0

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"[{verdict}] {self.scenario}: {self.events} updates in "
            f"{self.bursts} bursts -> {self.commits} commits; "
            f"{self.verify_passes} verify passes "
            f"({self.probes_checked} probes, {self.mismatches} mismatches, "
            f"{self.violations} violations) in {self.seconds:.2f}s"
        )


# -- trace-building machinery -------------------------------------------------


class _Table:
    """The per-(peer, prefix) announcement state the builders mutate.

    Seeded from ``ixp.updates`` so every withdrawal a scenario emits
    targets a route that really is on the table at that instant —
    the invariant :func:`validate_trace` enforces.
    """

    def __init__(self, ixp: SyntheticIXP) -> None:
        self.attrs: Dict[Tuple[str, IPv4Prefix], RouteAttributes] = {}
        self.live: Set[Tuple[str, IPv4Prefix]] = set()
        for update in ixp.updates:
            for announcement in update.announced:
                key = (update.peer, announcement.prefix)
                self.attrs[key] = announcement.attributes
                self.live.add(key)
            for withdrawal in update.withdrawn:
                self.live.discard((update.peer, withdrawal.prefix))

    def live_prefixes(self, peer: str) -> List[IPv4Prefix]:
        """This peer's currently-announced prefixes, deterministic order."""
        return sorted(
            (prefix for owner, prefix in self.live if owner == peer), key=str
        )

    def withdraw(self, peer: str, prefix: IPv4Prefix, time: float) -> BGPUpdate:
        key = (peer, prefix)
        if key not in self.live:
            raise ValueError(f"{peer} does not announce {prefix}: ghost withdrawal")
        self.live.discard(key)
        return BGPUpdate(peer, withdrawn=[Withdrawal(prefix)], time=time)

    def announce(
        self,
        peer: str,
        prefix: IPv4Prefix,
        time: float,
        attributes: Optional[RouteAttributes] = None,
    ) -> BGPUpdate:
        key = (peer, prefix)
        if attributes is None:
            attributes = self.attrs[key]
        self.attrs[key] = attributes
        self.live.add(key)
        return BGPUpdate(
            peer, announced=[Announcement(prefix, attributes)], time=time
        )


class _Clock:
    """Monotone scenario time: small intra-burst steps, >1 s burst gaps."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.now = 0.0

    def step(self) -> float:
        """Advance within the current burst."""
        self.now += self._rng.uniform(0.005, 0.15)
        return self.now

    def next_burst(self) -> float:
        """Open a new burst (gap always exceeds BURST_GAP_SECONDS)."""
        self.now += self._rng.uniform(2.0, 8.0)
        return self.now


def _perturbed(rng: random.Random, attributes: RouteAttributes) -> RouteAttributes:
    """A best-path change: same origin/next-hop, jittered middle of the path."""
    path = list(attributes.as_path.asns)
    if len(path) >= 2:
        path = [path[0], 63500 + rng.randrange(400)] + path[-1:]
    return RouteAttributes(as_path=path, next_hop=attributes.next_hop)


def _background_churn(
    table: _Table,
    clock: _Clock,
    rng: random.Random,
    exclude: Set[str],
    count: int,
    out: List[BGPUpdate],
    touched: Set[Tuple[str, IPv4Prefix]],
) -> None:
    """Sprinkle ``count`` unrelated best-path changes into the open burst.

    ``touched`` is the burst's already-emitted (peer, prefix) set; the
    churn skips those so the burst stays free of self-superseding
    updates.
    """
    candidates = sorted(
        (key for key in table.live if key[0] not in exclude and key not in touched),
        key=lambda key: (key[0], str(key[1])),
    )
    if not candidates:
        return
    for key in rng.sample(candidates, min(count, len(candidates))):
        peer, prefix = key
        attributes = _perturbed(rng, table.attrs[key])
        out.append(table.announce(peer, prefix, clock.step(), attributes))
        touched.add(key)


def _heaviest_announcers(ixp: SyntheticIXP, count: int) -> List[str]:
    names = sorted(
        ixp.announced, key=lambda name: (-len(ixp.announced[name]), name)
    )
    return names[:count]


# -- the three scenario builders ----------------------------------------------


def failover_storm(ixp: SyntheticIXP, spec: ScenarioSpec) -> UpdateTrace:
    """A heavy announcer's session flaps: full withdraw, churn, full restore.

    Params: ``victim`` (participant name; default the heaviest
    announcer), ``waves`` (session flaps, default 2), ``burst_size``
    (withdrawals per burst, default 50), ``churn_per_burst``
    (background best-path changes mixed into each burst, default 3).
    """
    rng = random.Random(spec.seed)
    table = _Table(ixp)
    clock = _Clock(rng)
    victim = str(spec.param("victim", _heaviest_announcers(ixp, 1)[0]))
    waves = int(spec.param("waves", 2))
    burst_size = int(spec.param("burst_size", 50))
    churn = int(spec.param("churn_per_burst", 3))

    updates: List[BGPUpdate] = []
    bursts = 0
    for _ in range(waves):
        victim_prefixes = table.live_prefixes(victim)
        # Session down: withdraw everything, burst_size at a time.
        for start in range(0, len(victim_prefixes), burst_size):
            clock.next_burst()
            bursts += 1
            touched: Set[Tuple[str, IPv4Prefix]] = set()
            for prefix in victim_prefixes[start : start + burst_size]:
                updates.append(table.withdraw(victim, prefix, clock.step()))
                touched.add((victim, prefix))
            _background_churn(table, clock, rng, {victim}, churn, updates, touched)
        # Session back up: re-announce everything (perturbed paths —
        # the restarted router re-learns routes, it does not replay them).
        for start in range(0, len(victim_prefixes), burst_size):
            clock.next_burst()
            bursts += 1
            touched = set()
            for prefix in victim_prefixes[start : start + burst_size]:
                attributes = _perturbed(rng, table.attrs[(victim, prefix)])
                updates.append(
                    table.announce(victim, prefix, clock.step(), attributes)
                )
                touched.add((victim, prefix))
            _background_churn(table, clock, rng, {victim}, churn, updates, touched)
    return UpdateTrace(
        updates=updates,
        active_prefixes=tuple(sorted({p for u in updates for p in u.prefixes}, key=str)),
        burst_count=bursts,
        duration=clock.now,
    )


def stuck_routes(ixp: SyntheticIXP, spec: ScenarioSpec) -> UpdateTrace:
    """A transit leaks other members' prefixes; cleanup withdrawals lag.

    The *hijacker* announces ``leak_count`` prefixes that other members
    own (longer AS path — a classic route leak).  The victims withdraw
    and re-announce their own routes while the leak is live; only
    afterwards do the hijacker's withdrawals trickle in, late, the way
    stuck routes drain in practice.

    Params: ``hijacker`` (default: second-heaviest announcer),
    ``leak_count`` (default 40), ``burst_size`` (default 20),
    ``victim_flaps`` (victims that flap mid-episode, default 10).
    """
    rng = random.Random(spec.seed)
    table = _Table(ixp)
    clock = _Clock(rng)
    heavies = _heaviest_announcers(ixp, 2)
    hijacker = str(spec.param("hijacker", heavies[-1]))
    leak_count = int(spec.param("leak_count", 40))
    burst_size = int(spec.param("burst_size", 20))
    victim_flaps = int(spec.param("victim_flaps", 10))

    spec_ports = ixp.config.participant(hijacker).ports
    if not spec_ports:
        raise ValueError(f"hijacker {hijacker!r} has no physical port")
    # Multihomed prefixes are live under several owners; leak each
    # prefix once, attributed to its lexically-first announcer.
    owner_of: Dict[IPv4Prefix, str] = {}
    for owner, prefix in sorted(table.live, key=lambda key: (str(key[1]), key[0])):
        if owner != hijacker and (hijacker, prefix) not in table.live:
            owner_of.setdefault(prefix, owner)
    foreign = sorted(owner_of.items(), key=lambda item: str(item[0]))
    leaked = [
        (owner, prefix)
        for prefix, owner in rng.sample(foreign, min(leak_count, len(foreign)))
    ]
    hijacker_asn = ixp.config.participant(hijacker).asn

    updates: List[BGPUpdate] = []
    bursts = 0
    # Phase 1 — the leak: hijacker announces foreign prefixes.
    for start in range(0, len(leaked), burst_size):
        clock.next_burst()
        bursts += 1
        for owner, prefix in leaked[start : start + burst_size]:
            origin = table.attrs[(owner, prefix)].as_path.origin_as
            port = spec_ports[rng.randrange(len(spec_ports))]
            attributes = RouteAttributes(
                as_path=[hijacker_asn, 63900 + rng.randrange(90), origin],
                next_hop=port.address,
            )
            updates.append(table.announce(hijacker, prefix, clock.step(), attributes))
    # Phase 2 — victims flap their own routes while the leak is live.
    victims = sorted({owner for owner, _ in leaked})[:victim_flaps]
    for victim in victims:
        clock.next_burst()
        bursts += 1
        mine = [prefix for owner, prefix in leaked if owner == victim]
        for prefix in mine:
            updates.append(table.withdraw(victim, prefix, clock.step()))
        clock.next_burst()
        bursts += 1
        for prefix in mine:
            attributes = _perturbed(rng, table.attrs[(victim, prefix)])
            updates.append(table.announce(victim, prefix, clock.step(), attributes))
    # Phase 3 — the late cleanup: hijacker finally withdraws the leak.
    for start in range(0, len(leaked), burst_size):
        clock.next_burst()
        bursts += 1
        for _, prefix in leaked[start : start + burst_size]:
            updates.append(table.withdraw(hijacker, prefix, clock.step()))
    return UpdateTrace(
        updates=updates,
        active_prefixes=tuple(sorted({p for u in updates for p in u.prefixes}, key=str)),
        burst_count=bursts,
        duration=clock.now,
    )


def correlated_withdrawal(ixp: SyntheticIXP, spec: ScenarioSpec) -> UpdateTrace:
    """Members sharing an upstream lose it together; recovery staggers.

    Each wave withdraws a correlated slice of several members' prefixes
    *in the same burst* (the upstream failed for all of them at once),
    then the re-announcements come back one member per burst.

    Params: ``members`` (count of affected sessions, default 6),
    ``waves`` (default 2), ``slice_size`` (prefixes withdrawn per
    member per wave, default 15).
    """
    rng = random.Random(spec.seed)
    table = _Table(ixp)
    clock = _Clock(rng)
    member_count = int(spec.param("members", 6))
    waves = int(spec.param("waves", 2))
    slice_size = int(spec.param("slice_size", 15))
    members = _heaviest_announcers(ixp, member_count)

    updates: List[BGPUpdate] = []
    bursts = 0
    for _ in range(waves):
        # The shared upstream dies: one burst, every member withdraws.
        clock.next_burst()
        bursts += 1
        lost: Dict[str, List[IPv4Prefix]] = {}
        for member in members:
            mine = table.live_prefixes(member)
            if not mine:
                continue
            lost[member] = rng.sample(mine, min(slice_size, len(mine)))
            for prefix in lost[member]:
                updates.append(table.withdraw(member, prefix, clock.step()))
        # Staggered recovery: each member re-announces in its own burst.
        for member in sorted(lost):
            clock.next_burst()
            bursts += 1
            for prefix in lost[member]:
                attributes = _perturbed(rng, table.attrs[(member, prefix)])
                updates.append(table.announce(member, prefix, clock.step(), attributes))
    return UpdateTrace(
        updates=updates,
        active_prefixes=tuple(sorted({p for u in updates for p in u.prefixes}, key=str)),
        burst_count=bursts,
        duration=clock.now,
    )


_BUILDERS = {
    "failover-storm": failover_storm,
    "stuck-routes": stuck_routes,
    "correlated-withdrawal": correlated_withdrawal,
}


def build_scenario_trace(ixp: SyntheticIXP, spec: ScenarioSpec) -> UpdateTrace:
    """Build (and validate) the trace for one scenario spec."""
    try:
        builder = _BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown scenario kind {spec.kind!r}; choose from {SCENARIO_KINDS}"
        ) from None
    trace = builder(ixp, spec)
    validate_trace(ixp, trace.updates)
    return trace


# -- the replay driver --------------------------------------------------------


def segment_bursts(
    updates: Sequence[BGPUpdate], gap: float = BURST_GAP_SECONDS
) -> List[List[BGPUpdate]]:
    """Re-segment a timestamped trace into its arrival bursts."""
    bursts: List[List[BGPUpdate]] = []
    current: List[BGPUpdate] = []
    last: Optional[float] = None
    for update in updates:
        if current and last is not None and update.time - last > gap:
            bursts.append(current)
            current = []
        current.append(update)
        last = update.time
    if current:
        bursts.append(current)
    return bursts


def replay(
    controller,
    updates: Sequence[BGPUpdate],
    scenario: str = "trace",
    verify_every: int = 4,
    probes: int = 32,
    seed: int = 0,
    burst_gap: float = BURST_GAP_SECONDS,
    recompile_every: int = 0,
) -> ReplayReport:
    """Drive a trace through a controller, sampling the verify oracle.

    Bursts feed the controller's runtime when one is attached (the
    event-loop ``pipelined()`` batch path, with per-event handles
    re-raising any runtime error) and fall back to inline facet calls
    otherwise — the same dual structure as the latency benchmark, so a
    scenario replays identically under ``REPRO_RUNTIME=inline`` and
    ``=eventloop``.

    Every ``verify_every`` bursts — and once more at the end — the
    PR-5 differential checker runs ``probes`` router-faithful packets
    plus the structural invariant sweep against the *quiesced* fabric
    (the oracle call drains the runtime first by going through the
    facet).  The report accumulates its mismatch/violation counts;
    ``report.ok`` is the scenario's pass/fail verdict.

    Steady churn rides the fast path and never reconciles the full
    table; ``recompile_every`` > 0 forces a full (guarded, delta-
    reconciled) compilation every that many bursts — the §4.3.2
    background re-optimization — so a replay also exercises the
    commit/rollback machinery mid-storm.
    """
    import time as _time

    runtime = getattr(controller, "runtime", None)
    bursts = segment_bursts(updates, gap=burst_gap)
    commits_before = controller.ops.churn().commits
    events = 0
    verify_passes = 0
    probes_checked = 0
    mismatches = 0
    violations = 0
    started = _time.perf_counter()

    def _verify(pass_index: int) -> None:
        nonlocal verify_passes, probes_checked, mismatches, violations
        report = controller.ops.verify(
            probes=probes, seed=seed + pass_index, invariants=True
        )
        verify_passes += 1
        probes_checked += report.checked
        mismatches += len(report.mismatches)
        violations += len(report.violations)

    for index, burst in enumerate(bursts):
        if runtime is not None:
            with runtime.pipelined():
                handles = [
                    controller.routing.process_update(update) for update in burst
                ]
            for handle in handles:
                if handle.error is not None:
                    raise handle.error
        else:
            for update in burst:
                controller.routing.process_update(update)
        events += len(burst)
        if recompile_every and (index + 1) % recompile_every == 0:
            controller.compile()
        if verify_every and (index + 1) % verify_every == 0:
            _verify(index + 1)
    _verify(0)  # final full-trace check, always

    return ReplayReport(
        scenario=scenario,
        events=events,
        bursts=len(bursts),
        commits=controller.ops.churn().commits - commits_before,
        verify_passes=verify_passes,
        probes_checked=probes_checked,
        mismatches=mismatches,
        violations=violations,
        seconds=_time.perf_counter() - started,
    )


# -- CLI (the `make churn-replay` smoke gate) ---------------------------------


def _main(argv=None):
    import argparse

    from repro.core.config import SDXConfig
    from repro.core.controller import SDXController
    from repro.workloads.policy_gen import generate_policies
    from repro.workloads.providers import SyntheticProvider, available_fixtures, load_fixture

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.scenarios",
        description="replay a churn scenario through a controller, "
        "sampling the verification oracle",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--fixture",
        default="ixp_small",
        help=f"checked-in topology fixture (one of {available_fixtures()})",
    )
    source.add_argument(
        "--synthetic",
        metavar="PARTICIPANTS,PREFIXES",
        help="use the synthetic generator instead of a fixture",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=SCENARIO_KINDS,
        help="scenario kind (repeatable; default: failover-storm)",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--verify-every", type=int, default=4)
    parser.add_argument("--probes", type=int, default=32)
    parser.add_argument(
        "--victim",
        metavar="NAME",
        help="failover-storm victim participant (default: the heaviest "
        "announcer — on Internet-scale fixtures pick a mid-tier member, "
        "or the storm replays a transit's entire table)",
    )
    parser.add_argument(
        "--recompile-every",
        type=int,
        default=5,
        help="force a full guarded compile every N bursts (0 disables)",
    )
    options = parser.parse_args(argv)

    if options.synthetic:
        participants, prefixes = (int(x) for x in options.synthetic.split(","))
        provider = SyntheticProvider(participants, prefixes, seed=options.seed)
    else:
        provider = load_fixture(options.fixture)
    ixp = provider.build()
    sdx = SDXConfig.from_env()
    print(
        f"topology {provider.name}: {len(ixp.config)} members, "
        f"{sum(len(v) for v in ixp.announced.values())} prefixes; "
        f"runtime={sdx.runtime_mode} vmac={sdx.vmac_mode} "
        f"dataplane={sdx.dataplane_mode}"
    )
    failures = 0
    for kind in options.scenario or ["failover-storm"]:
        controller = SDXController(ixp.config, sdx=sdx)
        controller.route_server.load(ixp.updates)
        workload = generate_policies(ixp, seed=options.seed + 1)
        with controller.deferred_recompilation():
            for name, policy_set in workload.policies.items():
                controller.policy.set_policies(name, policy_set)
        params = (
            {"victim": options.victim}
            if options.victim and kind == "failover-storm"
            else {}
        )
        spec = ScenarioSpec(
            name=f"{kind}@{provider.name}", kind=kind, seed=options.seed, params=params
        )
        trace = build_scenario_trace(ixp, spec)
        report = replay(
            controller,
            trace.updates,
            scenario=spec.name,
            verify_every=options.verify_every,
            probes=options.probes,
            seed=options.seed,
            recompile_every=options.recompile_every,
        )
        print(report.summary())
        if not report.ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
