"""The §6.1 policy mix: "emulating realistic AS policies at the IXP".

Quoting the assignment rules the paper uses for its scaling
experiments:

* the top 15% of *eyeball* ASes, the top 5% of *transit* ASes, and a
  random 5% of *content* ASes install custom policies;
* each **content provider** installs outbound policies for three
  randomly chosen top eyeball networks, plus one inbound policy
  matching on one header field;
* each **eyeball network** installs inbound policies for half of the
  content providers, matching on one randomly selected header field,
  and no outbound policies;
* each **transit provider** installs outbound policies for one prefix
  group for half of the top eyeball networks (destination prefix plus
  one extra header field) and inbound policies proportional to the
  number of top content providers.

:func:`generate_policies` reproduces those rules deterministically from
a seed, returning ready-to-install :class:`~repro.core.participant.SDXPolicySet`
objects.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.participant import SDXPolicySet
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import Filter, Policy, fwd, match, parallel
from repro.workloads.topology_gen import ASCategory, SyntheticIXP

__all__ = ["PolicyWorkload", "generate_policies"]

#: Application ports used by application-specific peering policies.
_APP_PORTS = (80, 443, 8080, 1935, 8443)

#: Source-prefix split points used by inbound traffic engineering.
_SRC_SPLITS = ("0.0.0.0/1", "128.0.0.0/1", "0.0.0.0/2", "192.0.0.0/2")


class PolicyWorkload:
    """The generated policy assignment plus its bookkeeping."""

    def __init__(
        self,
        policies: Dict[str, SDXPolicySet],
        policy_participants: Dict[str, List[str]],
        policy_count: int,
    ) -> None:
        self.policies = policies
        self.policy_participants = policy_participants
        self.policy_count = policy_count

    def __repr__(self) -> str:
        return (
            f"PolicyWorkload(participants={len(self.policies)}, "
            f"policies={self.policy_count})"
        )


def _one_field_match(rng: random.Random) -> Filter:
    """A single-header-field predicate (the paper's inbound policy shape)."""
    choice = rng.randrange(3)
    if choice == 0:
        return match(srcip=_SRC_SPLITS[rng.randrange(len(_SRC_SPLITS))])
    if choice == 1:
        return match(dstport=_APP_PORTS[rng.randrange(len(_APP_PORTS))])
    return match(srcport=1024 + rng.randrange(64000))


def _inbound_policy(ports: Sequence[str], rng: random.Random, clauses: int) -> Optional[Policy]:
    """Spread ``clauses`` single-field matches over the participant's ports."""
    if not ports or clauses <= 0:
        return None
    parts: List[Policy] = []
    for index in range(clauses):
        port = ports[index % len(ports)]
        parts.append(_one_field_match(rng) >> fwd(port))
    return parallel(*parts)


def generate_policies(
    ixp: SyntheticIXP,
    seed: int = 1,
    prefix_limit: Optional[int] = None,
) -> PolicyWorkload:
    """Instantiate the §6.1 policy mix over a synthetic exchange.

    ``prefix_limit`` optionally caps how many of a target's prefixes a
    transit provider's destination-specific policy names (the Figure 6
    experiments sweep the number of prefixes with SDX policies).
    """
    rng = random.Random(seed)
    eyeballs = ixp.participants_in(ASCategory.EYEBALL)
    transits = ixp.participants_in(ASCategory.TRANSIT)
    contents = ixp.participants_in(ASCategory.CONTENT)

    top_eyeballs = eyeballs[: max(1, int(len(eyeballs) * 0.15))] if eyeballs else []
    top_transits = transits[: max(1, int(len(transits) * 0.05))] if transits else []
    content_pool = list(contents)
    rng.shuffle(content_pool)
    chosen_contents = content_pool[: max(1, int(len(contents) * 0.05))] if contents else []

    policies: Dict[str, SDXPolicySet] = {}
    assignment: Dict[str, List[str]] = {"eyeball": [], "transit": [], "content": []}
    policy_count = 0

    # Content providers: application-specific peering toward top eyeballs.
    for name in chosen_contents:
        outbound_parts: List[Policy] = []
        for _ in range(3):
            if not top_eyeballs:
                break
            target = top_eyeballs[rng.randrange(len(top_eyeballs))]
            if target == name:
                continue
            port = _APP_PORTS[rng.randrange(len(_APP_PORTS))]
            outbound_parts.append(match(dstport=port) >> fwd(target))
            policy_count += 1
        inbound = _inbound_policy(ixp.config.participant(name).port_ids, rng, 1)
        if inbound is not None:
            policy_count += 1
        if outbound_parts or inbound is not None:
            policies[name] = SDXPolicySet(
                outbound=parallel(*outbound_parts) if outbound_parts else None,
                inbound=inbound,
            )
            assignment["content"].append(name)

    # Eyeballs: inbound policies for half of the content providers.
    for name in top_eyeballs:
        clauses = max(1, len(contents) // 2)
        inbound = _inbound_policy(ixp.config.participant(name).port_ids, rng, clauses)
        if inbound is not None:
            policies[name] = SDXPolicySet(inbound=inbound)
            assignment["eyeball"].append(name)
            policy_count += clauses

    # Transit providers: destination-specific outbound TE toward half the
    # top eyeballs, plus inbound policies sized by the content head count.
    for name in top_transits:
        outbound_parts = []
        targets = top_eyeballs[: max(1, len(top_eyeballs) // 2)]
        for target in targets:
            target_prefixes = list(ixp.announced.get(target, ()))
            if target == name or not target_prefixes:
                continue
            count = len(target_prefixes) if prefix_limit is None else min(
                prefix_limit, len(target_prefixes)
            )
            chosen: Tuple[IPv4Prefix, ...] = tuple(
                {
                    target_prefixes[rng.randrange(len(target_prefixes))]
                    for _ in range(min(4, count))
                }
            )
            port = _APP_PORTS[rng.randrange(len(_APP_PORTS))]
            outbound_parts.append(
                match(dstip=set(chosen), dstport=port) >> fwd(target)
            )
            policy_count += 1
        clauses = max(1, len(chosen_contents))
        inbound = _inbound_policy(ixp.config.participant(name).port_ids, rng, clauses)
        if inbound is not None:
            policy_count += clauses
        if outbound_parts or inbound is not None:
            policies[name] = SDXPolicySet(
                outbound=parallel(*outbound_parts) if outbound_parts else None,
                inbound=inbound,
            )
            assignment["transit"].append(name)

    return PolicyWorkload(policies, assignment, policy_count)
