"""JSON persistence for workloads, topologies, traces and scenarios.

Reproducibility tooling: experiments can snapshot the exact synthetic
exchange and update trace they ran against (an MRT-dump stand-in), and
reload them later — or on another machine — without re-deriving them
from generator seeds.  The format is plain JSON, versioned, and
deliberately close to the in-memory model.

Four self-identifying document kinds:

* ``repro-sdx-updates`` — a bare list of BGP updates;
* ``repro-sdx-topology`` — a full :class:`SyntheticIXP` (config,
  categories, table, peering matrix), whatever provider built it;
* ``repro-sdx-trace`` — an :class:`UpdateTrace` with its ground truth
  (active set, burst count, duration);
* ``repro-sdx-scenario`` — a churn :class:`ScenarioSpec` together with
  its materialised trace, so an episode replays bit-for-bit elsewhere.

Round-trips are exact: the determinism suite pins that serialising and
reloading a topology/trace and replaying it produces byte-identical
fabric state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from repro.bgp.attributes import Community, Origin, RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix

__all__ = [
    "dump_scenario",
    "dump_topology",
    "dump_trace",
    "dump_updates",
    "dumps_scenario",
    "dumps_topology",
    "dumps_trace",
    "dumps_updates",
    "load_scenario",
    "load_topology",
    "load_trace",
    "load_updates",
    "loads_scenario",
    "loads_topology",
    "loads_trace",
    "loads_updates",
]

FORMAT_VERSION = 1


def _attributes_to_json(attributes: RouteAttributes) -> Dict[str, Any]:
    return {
        "as_path": list(attributes.as_path),
        "next_hop": str(attributes.next_hop),
        "origin": attributes.origin.name,
        "med": attributes.med,
        "local_pref": attributes.local_pref,
        "communities": sorted(str(c) for c in attributes.communities),
    }


def _attributes_from_json(data: Dict[str, Any]) -> RouteAttributes:
    return RouteAttributes(
        as_path=data["as_path"],
        next_hop=data["next_hop"],
        origin=Origin[data["origin"]],
        med=data["med"],
        local_pref=data["local_pref"],
        communities=[Community.parse(text) for text in data["communities"]],
    )


def _update_to_json(update: BGPUpdate) -> Dict[str, Any]:
    return {
        "peer": update.peer,
        "time": update.time,
        "announced": [
            {
                "prefix": str(announcement.prefix),
                "attributes": _attributes_to_json(announcement.attributes),
                "export_to": (
                    sorted(announcement.export_to)
                    if announcement.export_to is not None
                    else None
                ),
            }
            for announcement in update.announced
        ],
        "withdrawn": [str(withdrawal.prefix) for withdrawal in update.withdrawn],
    }


def _update_from_json(data: Dict[str, Any]) -> BGPUpdate:
    return BGPUpdate(
        peer=data["peer"],
        time=data["time"],
        announced=[
            Announcement(
                entry["prefix"],
                _attributes_from_json(entry["attributes"]),
                export_to=entry["export_to"],
            )
            for entry in data["announced"]
        ],
        withdrawn=[Withdrawal(prefix) for prefix in data["withdrawn"]],
    )


def dumps_updates(updates: List[BGPUpdate]) -> str:
    """Serialize an update trace to a JSON string."""
    payload = {
        "format": "repro-sdx-updates",
        "version": FORMAT_VERSION,
        "updates": [_update_to_json(update) for update in updates],
    }
    return json.dumps(payload, indent=1)


def loads_updates(text: str) -> List[BGPUpdate]:
    """Deserialize an update trace from a JSON string."""
    payload = json.loads(text)
    if payload.get("format") != "repro-sdx-updates":
        raise ValueError("not a repro-sdx update trace")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    return [_update_from_json(entry) for entry in payload["updates"]]


def dump_updates(updates: List[BGPUpdate], stream: Union[str, IO[str]]) -> None:
    """Write a trace to a path or text stream."""
    text = dumps_updates(updates)
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        stream.write(text)


def load_updates(stream: Union[str, IO[str]]) -> List[BGPUpdate]:
    """Read a trace from a path or text stream."""
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return loads_updates(handle.read())
    return loads_updates(stream.read())


# -- shared plumbing ----------------------------------------------------------


def _check_envelope(payload: Dict[str, Any], kind: str) -> Dict[str, Any]:
    if payload.get("format") != kind:
        raise ValueError(f"not a {kind} document")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported {kind} version {payload.get('version')!r}")
    return payload


def _write(text: str, stream: Union[str, IO[str]]) -> None:
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        stream.write(text)


def _read(stream: Union[str, IO[str]]) -> str:
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return handle.read()
    return stream.read()


# -- full topologies (SyntheticIXP, whichever provider built it) --------------


def dumps_topology(ixp) -> str:
    """Serialize a :class:`~repro.workloads.topology_gen.SyntheticIXP`.

    Participant registration order, per-participant announced-prefix
    order and the update list are all preserved exactly — loading the
    document and replaying it must produce the same controller state,
    not merely an equivalent one.
    """
    config = ixp.config
    payload = {
        "format": "repro-sdx-topology",
        "version": FORMAT_VERSION,
        "seed": ixp.seed,
        "config": {
            "name": config.name,
            "vnh_pool": str(config.vnh_pool),
            "participants": [
                {
                    "name": spec.name,
                    "asn": spec.asn,
                    "ports": [
                        [port.port_id, str(port.address), str(port.hardware)]
                        for port in spec.ports
                    ],
                }
                for spec in config.participants()
            ],
        },
        "categories": {name: ixp.categories[name] for name in sorted(ixp.categories)},
        "announced": {
            name: [str(prefix) for prefix in prefixes]
            for name, prefixes in ixp.announced.items()
        },
        "announced_order": list(ixp.announced),
        "updates": [_update_to_json(update) for update in ixp.updates],
        "peering": (
            {name: list(peers) for name, peers in sorted(ixp.peering.items())}
            if ixp.peering is not None
            else None
        ),
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def loads_topology(text: str):
    """Deserialize a ``repro-sdx-topology`` document."""
    from repro.workloads.topology_gen import SyntheticIXP

    payload = _check_envelope(json.loads(text), "repro-sdx-topology")
    config_data = payload["config"]
    config = IXPConfig(
        vnh_pool=config_data["vnh_pool"], name=config_data.get("name")
    )
    for entry in config_data["participants"]:
        config.add_participant(
            entry["name"],
            asn=entry["asn"],
            ports=[tuple(port) for port in entry["ports"]],
        )
    announced = {
        name: tuple(IPv4Prefix(prefix) for prefix in payload["announced"][name])
        for name in payload["announced_order"]
    }
    peering = payload.get("peering")
    return SyntheticIXP(
        config=config,
        categories=dict(payload["categories"]),
        announced=announced,
        updates=[_update_from_json(entry) for entry in payload["updates"]],
        seed=payload["seed"],
        peering=(
            {name: tuple(peers) for name, peers in peering.items()}
            if peering is not None
            else None
        ),
    )


def dump_topology(ixp, stream: Union[str, IO[str]]) -> None:
    """Write a topology document to a path or text stream."""
    _write(dumps_topology(ixp), stream)


def load_topology(stream: Union[str, IO[str]]):
    """Read a topology document from a path or text stream."""
    return loads_topology(_read(stream))


# -- update traces with ground truth (UpdateTrace) ----------------------------


def dumps_trace(trace) -> str:
    """Serialize an :class:`~repro.workloads.update_gen.UpdateTrace`."""
    payload = {
        "format": "repro-sdx-trace",
        "version": FORMAT_VERSION,
        "updates": [_update_to_json(update) for update in trace.updates],
        "active_prefixes": [str(prefix) for prefix in trace.active_prefixes],
        "burst_count": trace.burst_count,
        "duration": trace.duration,
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def loads_trace(text: str):
    """Deserialize a ``repro-sdx-trace`` document."""
    from repro.workloads.update_gen import UpdateTrace

    payload = _check_envelope(json.loads(text), "repro-sdx-trace")
    return UpdateTrace(
        updates=[_update_from_json(entry) for entry in payload["updates"]],
        active_prefixes=tuple(
            IPv4Prefix(prefix) for prefix in payload["active_prefixes"]
        ),
        burst_count=payload["burst_count"],
        duration=payload["duration"],
    )


def dump_trace(trace, stream: Union[str, IO[str]]) -> None:
    """Write a trace document to a path or text stream."""
    _write(dumps_trace(trace), stream)


def load_trace(stream: Union[str, IO[str]]):
    """Read a trace document from a path or text stream."""
    return loads_trace(_read(stream))


# -- churn scenarios (spec + materialised trace) ------------------------------


def dumps_scenario(spec, trace) -> str:
    """Serialize a churn scenario: its spec plus the trace it built.

    Shipping the materialised trace (not just the spec) makes the
    document self-contained — replaying it needs no generator code, so
    an incident episode can be re-run against future controller
    versions even if the builders change.
    """
    payload = {
        "format": "repro-sdx-scenario",
        "version": FORMAT_VERSION,
        "spec": {
            "name": spec.name,
            "kind": spec.kind,
            "seed": spec.seed,
            "params": dict(spec.params),
        },
        "trace": json.loads(dumps_trace(trace)),
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def loads_scenario(text: str):
    """Deserialize a ``repro-sdx-scenario`` document → (spec, trace)."""
    from repro.workloads.scenarios import ScenarioSpec

    payload = _check_envelope(json.loads(text), "repro-sdx-scenario")
    spec_data = payload["spec"]
    spec = ScenarioSpec(
        name=spec_data["name"],
        kind=spec_data["kind"],
        seed=spec_data["seed"],
        params=dict(spec_data["params"]),
    )
    return spec, loads_trace(json.dumps(payload["trace"]))


def dump_scenario(spec, trace, stream: Union[str, IO[str]]) -> None:
    """Write a scenario document to a path or text stream."""
    _write(dumps_scenario(spec, trace), stream)


def load_scenario(stream: Union[str, IO[str]]):
    """Read a scenario document from a path or text stream."""
    return loads_scenario(_read(stream))
