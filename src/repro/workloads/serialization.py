"""JSON persistence for workloads and update traces.

Reproducibility tooling: experiments can snapshot the exact synthetic
exchange and update trace they ran against (an MRT-dump stand-in), and
reload them later — or on another machine — without re-deriving them
from generator seeds.  The format is plain JSON, versioned, and
deliberately close to the in-memory model.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from repro.bgp.attributes import Community, Origin, RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.netutils.ip import IPv4Prefix

__all__ = [
    "dump_updates",
    "dumps_updates",
    "load_updates",
    "loads_updates",
]

FORMAT_VERSION = 1


def _attributes_to_json(attributes: RouteAttributes) -> Dict[str, Any]:
    return {
        "as_path": list(attributes.as_path),
        "next_hop": str(attributes.next_hop),
        "origin": attributes.origin.name,
        "med": attributes.med,
        "local_pref": attributes.local_pref,
        "communities": sorted(str(c) for c in attributes.communities),
    }


def _attributes_from_json(data: Dict[str, Any]) -> RouteAttributes:
    return RouteAttributes(
        as_path=data["as_path"],
        next_hop=data["next_hop"],
        origin=Origin[data["origin"]],
        med=data["med"],
        local_pref=data["local_pref"],
        communities=[Community.parse(text) for text in data["communities"]],
    )


def _update_to_json(update: BGPUpdate) -> Dict[str, Any]:
    return {
        "peer": update.peer,
        "time": update.time,
        "announced": [
            {
                "prefix": str(announcement.prefix),
                "attributes": _attributes_to_json(announcement.attributes),
                "export_to": (
                    sorted(announcement.export_to)
                    if announcement.export_to is not None
                    else None
                ),
            }
            for announcement in update.announced
        ],
        "withdrawn": [str(withdrawal.prefix) for withdrawal in update.withdrawn],
    }


def _update_from_json(data: Dict[str, Any]) -> BGPUpdate:
    return BGPUpdate(
        peer=data["peer"],
        time=data["time"],
        announced=[
            Announcement(
                entry["prefix"],
                _attributes_from_json(entry["attributes"]),
                export_to=entry["export_to"],
            )
            for entry in data["announced"]
        ],
        withdrawn=[Withdrawal(prefix) for prefix in data["withdrawn"]],
    )


def dumps_updates(updates: List[BGPUpdate]) -> str:
    """Serialize an update trace to a JSON string."""
    payload = {
        "format": "repro-sdx-updates",
        "version": FORMAT_VERSION,
        "updates": [_update_to_json(update) for update in updates],
    }
    return json.dumps(payload, indent=1)


def loads_updates(text: str) -> List[BGPUpdate]:
    """Deserialize an update trace from a JSON string."""
    payload = json.loads(text)
    if payload.get("format") != "repro-sdx-updates":
        raise ValueError("not a repro-sdx update trace")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    return [_update_from_json(entry) for entry in payload["updates"]]


def dump_updates(updates: List[BGPUpdate], stream: Union[str, IO[str]]) -> None:
    """Write a trace to a path or text stream."""
    text = dumps_updates(updates)
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        stream.write(text)


def load_updates(stream: Union[str, IO[str]]) -> List[BGPUpdate]:
    """Read a trace from a path or text stream."""
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return loads_updates(handle.read())
    return loads_updates(stream.read())
