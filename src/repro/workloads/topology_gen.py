"""Synthetic IXP topologies "emulating real-world IXP topologies" (§6.1).

:func:`generate_ixp` builds, deterministically from a seed:

* an :class:`~repro.ixp.topology.IXPConfig` with the requested number
  of participants (a configurable fraction with two ports, matching
  the paper's "fraction of participants with multiple ports");
* a participant classification into *eyeball*, *transit*, and
  *content* ASes (the §6.1 policy-assignment categories);
* a BGP table: each participant announces a power-law-skewed share of
  a disjoint /24 pool, with realistic AS-path lengths.

The result object also carries the loaded
:class:`~repro.bgp.route_server.RouteServer` inputs so experiments can
instantiate controllers directly.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix
from repro.workloads.prefixes import allocate_prefix_pool, announcement_counts

__all__ = [
    "ASCategory",
    "PEERING_LAN_CAPACITY",
    "PORTS_PER_PARTICIPANT",
    "SyntheticIXP",
    "generate_ixp",
    "peering_lan_ports",
]


class ASCategory:
    """Participant classes used by the §6.1 policy mix."""

    EYEBALL = "eyeball"
    TRANSIT = "transit"
    CONTENT = "content"

    ALL = (EYEBALL, TRANSIT, CONTENT)


class SyntheticIXP(NamedTuple):
    """A generated exchange: config, classification, and routing table.

    ``peering`` optionally records the data-derived peering matrix
    (participant → peers it exchanges routes with); ``None`` means
    everyone peers with everyone, which is what the purely synthetic
    generator assumes.
    """

    config: IXPConfig
    categories: Dict[str, str]
    announced: Dict[str, Tuple[IPv4Prefix, ...]]
    updates: List[BGPUpdate]
    seed: int
    peering: Optional[Dict[str, Tuple[str, ...]]] = None

    @property
    def participant_names(self) -> Tuple[str, ...]:
        return self.config.participant_names()

    def participants_in(self, category: str) -> List[str]:
        """Participants of one category, sorted by prefix count (desc).

        §6.1 sorts each category "by the number of prefixes that they
        advertise" to pick the policy-installing heads.
        """
        members = [
            name for name, cat in self.categories.items() if cat == category
        ]
        members.sort(key=lambda name: (-len(self.announced[name]), name))
        return members

    def all_prefixes(self) -> List[IPv4Prefix]:
        """Every primarily-announced prefix, in participant order."""
        out: List[IPv4Prefix] = []
        for prefixes in self.announced.values():
            out.extend(prefixes)
        return out

    def announcement_sets(self) -> Dict[str, FrozenSet[IPv4Prefix]]:
        """Every participant's full announced set, backups included.

        ``announced`` records only primary ownership; this derives the
        per-AS sets the way the paper's §6.2 experiment does — from the
        actual BGP table — so multihomed prefixes appear in several sets.
        """
        sets: Dict[str, set] = {name: set() for name in self.participant_names}
        for update in self.updates:
            for announcement in update.announced:
                sets[update.peer].add(announcement.prefix)
        return {name: frozenset(prefixes) for name, prefixes in sets.items()}


def _participant_name(index: int) -> str:
    return f"AS{index + 1:03d}"


#: Port slots reserved per participant index on the peering LAN.
PORTS_PER_PARTICIPANT = 4
#: Usable final-octet values — ``.0`` and ``.255`` are skipped (network/
#: broadcast-looking interface bytes confuse real router configs).
_HOST_BYTES = 254
#: 172.0.0.0/12 gives 16 second-octet values; each /16 holds 256×254
#: usable interface addresses under the skip rule.
PEERING_LAN_CAPACITY = 16 * 256 * _HOST_BYTES


def _port_specs(
    index: int, ports: int, name: Optional[str] = None
) -> List[Tuple[str, str, str]]:
    """(port_id, interface IP, MAC) triples on the 172.0.0.0/12 peering LAN.

    Every (``index``, ``port_number``) pair maps to a distinct *slot*;
    the slot is encoded bijectively into both the interface address and
    the MAC, so port identities never collide below
    :data:`PEERING_LAN_CAPACITY` slots (~260k participants at 4 ports
    each) and exhaustion raises instead of silently wrapping.  The
    final octet skips ``.0`` and ``.255``.
    """
    if ports > PORTS_PER_PARTICIPANT:
        raise ValueError(
            f"at most {PORTS_PER_PARTICIPANT} ports per participant "
            f"(requested {ports})"
        )
    label = name if name is not None else _participant_name(index)
    specs = []
    for port_number in range(ports):
        slot = index * PORTS_PER_PARTICIPANT + port_number
        if not 0 <= slot < PEERING_LAN_CAPACITY:
            raise ValueError(
                f"peering LAN exhausted: slot {slot} exceeds the "
                f"{PEERING_LAN_CAPACITY} interface addresses of 172.0.0.0/12"
            )
        low = slot % _HOST_BYTES + 1  # 1..254 — never .0 / .255
        rest = slot // _HOST_BYTES
        address = f"172.{rest >> 8}.{rest & 0xFF}.{low}"
        # The slot fits in 20 bits (< capacity), so three MAC bytes
        # encode it without the pre-fix wrap at index 0xFFFF.
        hardware = (
            f"08:00:27:{(slot >> 16) & 0xFF:02x}:"
            f"{(slot >> 8) & 0xFF:02x}:{slot & 0xFF:02x}"
        )
        specs.append((f"{label}-p{port_number + 1}", address, hardware))
    return specs


#: Public name for the slot→(IP, MAC) mapping so topology *providers*
#: (:mod:`repro.workloads.providers`) place their participants on the
#: same peering LAN with the same collision-freedom guarantee.
peering_lan_ports = _port_specs


def generate_ixp(
    participants: int,
    total_prefixes: int,
    seed: int = 0,
    multi_port_fraction: float = 0.2,
    category_mix: Tuple[float, float, float] = (0.5, 0.3, 0.2),
    multihoming_fraction: float = 0.3,
    max_backup_announcers: int = 2,
    vnh_pool: str = "172.16.0.0/12",
) -> SyntheticIXP:
    """Generate a synthetic exchange.

    ``category_mix`` gives the (eyeball, transit, content) shares.
    Announcements carry AS paths of 1-4 hops ending at a synthetic
    origin AS, so AS-path-based RIB queries have something to match.
    ``multihoming_fraction`` of the prefixes are additionally announced
    (with a longer path) by a second, transit participant — without
    alternate routes, outbound deflection policies would have nothing
    legitimate to deflect to.
    """
    if participants <= 0:
        raise ValueError("need at least one participant")
    rng = random.Random(seed)
    config = IXPConfig(vnh_pool=vnh_pool)
    categories: Dict[str, str] = {}
    eyeball_share, transit_share, _ = category_mix

    for index in range(participants):
        name = _participant_name(index)
        ports = 2 if rng.random() < multi_port_fraction else 1
        config.add_participant(name, asn=65001 + index, ports=_port_specs(index, ports))
        roll = rng.random()
        if roll < eyeball_share:
            categories[name] = ASCategory.EYEBALL
        elif roll < eyeball_share + transit_share:
            categories[name] = ASCategory.TRANSIT
        else:
            categories[name] = ASCategory.CONTENT

    pool = allocate_prefix_pool(total_prefixes)
    counts = announcement_counts(participants, total_prefixes, rng)
    # Heaviest announcers tend to be transit networks at real IXPs; bias
    # the big counts toward transit/content without making it absolute.
    order = sorted(
        range(participants),
        key=lambda i: (
            0 if categories[_participant_name(i)] == ASCategory.TRANSIT else 1,
            rng.random(),
        ),
    )

    announced: Dict[str, Tuple[IPv4Prefix, ...]] = {}
    updates: List[BGPUpdate] = []
    cursor = 0
    for rank, participant_index in enumerate(order):
        name = _participant_name(participant_index)
        spec = config.participant(name)
        count = counts[rank]
        mine = pool[cursor : cursor + count]
        cursor += count
        announced[name] = tuple(mine)
        announcements: List[Announcement] = []
        for prefix in mine:
            origin_as = 64512 + (int(prefix.network) >> 8) % 1000
            path_middle = [64000 + rng.randrange(400) for _ in range(rng.randrange(3))]
            port = spec.ports[rng.randrange(len(spec.ports))]
            announcements.append(
                Announcement(
                    prefix,
                    RouteAttributes(
                        as_path=[spec.asn] + path_middle + [origin_as],
                        next_hop=port.address,
                    ),
                )
            )
        updates.append(BGPUpdate(name, announced=announcements))

    # Backup announcers: transit networks re-announce a sample of other
    # participants' prefixes with longer paths.  Real IXP tables show
    # rich announcement overlap; the number of distinct announcer
    # combinations bounds how many prefix groups Figure 6 can find, so
    # each multihomed prefix draws 1..max_backup_announcers backups.
    transit_names = [
        name for name in config.participant_names()
        if categories[name] == ASCategory.TRANSIT
    ] or list(config.participant_names())
    secondary: Dict[str, List[Announcement]] = {}
    for name, prefixes in announced.items():
        # An AS's prefixes share its (few) upstream providers, so backup
        # announcer combinations repeat across its prefixes — that
        # correlation is what keeps the number of distinct forwarding
        # signatures (Figure 6's prefix groups) sub-linear in reality.
        provider_pool = rng.sample(
            transit_names, min(max(1, max_backup_announcers), len(transit_names))
        )
        for prefix in prefixes:
            if rng.random() >= multihoming_fraction:
                continue
            backup_count = rng.randint(1, len(provider_pool))
            backups = provider_pool[:backup_count]
            for extra_hops, backup in enumerate(backups):
                if backup == name:
                    continue
                spec = config.participant(backup)
                port = spec.ports[rng.randrange(len(spec.ports))]
                origin_as = 64512 + (int(prefix.network) >> 8) % 1000
                middle = [63000 + rng.randrange(400) for _ in range(1 + extra_hops)]
                secondary.setdefault(backup, []).append(
                    Announcement(
                        prefix,
                        RouteAttributes(
                            as_path=[spec.asn] + middle + [origin_as],
                            next_hop=port.address,
                        ),
                    )
                )
    for name, announcements in sorted(secondary.items()):
        updates.append(BGPUpdate(name, announced=announcements))

    return SyntheticIXP(
        config=config,
        categories=categories,
        announced=announced,
        updates=updates,
        seed=seed,
    )
