"""Regenerate the checked-in fixture snapshots (development utility).

The fixtures are *data inputs*, not generator outputs the code depends
on: they stand in for CAIDA AS-relationship / pfx2as-derived snapshots
of a large European exchange, shaped to the §4.3.2/Table 1 statistics
(top ~1% of members announcing >50% of prefixes, bottom 90% under a
few percent, transit-heavy announcement overlap).  This script exists
so the snapshots have reproducible provenance; run it only to rebuild
them::

    PYTHONPATH=src python -m repro.workloads.fixtures.make_fixture

The files it writes are committed; nothing imports this module at
runtime.
"""

import os
import random

HERE = os.path.dirname(os.path.abspath(__file__))


def make_amsix2014(rng: random.Random) -> None:
    """160-member census, ~102k prefixes, CAIDA serial-1 relationships."""
    members = []  # (asn, prefixes, ports)
    tier1 = [(2914, 45000), (1299, 18000)]  # the top-1% heavy announcers
    mid_transits = [
        (3356, 4100), (6939, 3700), (174, 3400), (3257, 2950), (6453, 2600),
        (1273, 2200), (3491, 1800), (9002, 1450), (6762, 1150), (5511, 900),
        (12956, 650), (7018, 450),
    ]
    for asn, count in tier1:
        members.append((asn, count, 4))
    for asn, count in mid_transits:
        members.append((asn, count, 2))
    stub_base = 50000
    stubs = []
    for index in range(146):
        asn = stub_base + index * 7 + rng.randrange(5)
        count = max(1, int(rng.paretovariate(1.4)))
        count = min(count, 60)
        ports = 2 if rng.random() < 0.15 else 1
        stubs.append((asn, count, ports))
        members.append((asn, count, ports))
    total = sum(count for _, count, _ in members)
    # Top up the heaviest announcer so the census crosses 100k prefixes.
    deficit = 102000 - total
    if deficit > 0:
        asn, count, ports = members[0]
        members[0] = (asn, count + deficit, ports)

    edges = []  # (as1, as2, rel)
    transit_asns = [asn for asn, _ in tier1] + [asn for asn, _ in mid_transits]
    # Tier-1s peer with each other and with every mid transit.
    edges.append((tier1[0][0], tier1[1][0], 0))
    for asn, _ in mid_transits:
        for t1, _ in tier1:
            edges.append((t1, asn, -1))
    # Mid-transit p2p mesh (sparse).
    for i, (left, _) in enumerate(mid_transits):
        for right, _ in mid_transits[i + 1 :]:
            if rng.random() < 0.4:
                edges.append((left, right, 0))
    # Every stub buys transit from 1-3 providers; some stubs also peer.
    for asn, _, _ in stubs:
        providers = rng.sample(transit_asns, rng.randint(1, 3))
        for provider in providers:
            edges.append((provider, asn, -1))
    for _ in range(40):
        left, right = rng.sample([asn for asn, _, _ in stubs], 2)
        edges.append((left, right, 0))

    with open(os.path.join(HERE, "amsix2014.members"), "w") as handle:
        handle.write(
            "# IXP membership census snapshot (aggregated pfx2as counts)\n"
            "# format: asn|prefixes|ports\n"
        )
        for asn, count, ports in members:
            handle.write(f"{asn}|{count}|{ports}\n")
    with open(os.path.join(HERE, "amsix2014.asrel"), "w") as handle:
        handle.write(
            "# AS-relationship snapshot (CAIDA serial-1 format)\n"
            "# as1|as2|rel  (rel -1: as1 provider of as2; 0: p2p)\n"
        )
        for as1, as2, rel in edges:
            handle.write(f"{as1}|{as2}|{rel}\n")
    print(
        f"amsix2014: {len(members)} members, "
        f"{sum(c for _, c, _ in members)} prefixes, {len(edges)} edges"
    )


def make_ixp_small(rng: random.Random) -> None:
    """A 24-node GML fixture small enough for unit/integration tests."""
    nodes = []
    transits = [(64601, 120, 2), (64602, 85, 2), (64603, 60, 2)]
    contents = [(64700 + i, rng.randint(10, 26), 1) for i in range(6)]
    eyeballs = [(64800 + i, rng.randint(1, 8), 1) for i in range(15)]
    nodes.extend(transits + contents + eyeballs)
    asn_ids = {asn: index for index, (asn, _, _) in enumerate(nodes)}

    edges = []
    for asn, _, _ in contents + eyeballs:
        for provider, _, _ in rng.sample(transits, rng.randint(1, 2)):
            edges.append((provider, asn, "p2c"))
    for i, (left, _, _) in enumerate(transits):
        for right, _, _ in transits[i + 1 :]:
            edges.append((left, right, "p2p"))
    for _ in range(6):
        (l, _, _), (r, _, _) = rng.sample(contents + eyeballs, 2)
        edges.append((l, r, "p2p"))

    lines = ["graph [", "  directed 0"]
    for index, (asn, prefixes, ports) in enumerate(nodes):
        lines.append(
            f'  node [ id {index} label "AS{asn}" asn {asn} '
            f"prefixes {prefixes} ports {ports} ]"
        )
    for left, right, rel in edges:
        lines.append(
            f'  edge [ source {asn_ids[left]} target {asn_ids[right]} rel "{rel}" ]'
        )
    lines.append("]")
    with open(os.path.join(HERE, "ixp_small.gml"), "w") as handle:
        handle.write("\n".join(lines) + "\n")
    total = sum(p for _, p, _ in nodes)
    print(f"ixp_small: {len(nodes)} members, {total} prefixes, {len(edges)} edges")


if __name__ == "__main__":
    make_amsix2014(random.Random(2014))
    make_ixp_small(random.Random(24))
