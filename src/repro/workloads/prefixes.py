"""Synthetic prefix censuses with realistic announcement skew.

Section 6.1 calibrates against AMS-IX: "approximately 1% of the
participating ASes announce more than 50% of the total prefixes, and
90% of the ASes combined announce less than 1%".  We reproduce that
shape with a truncated power-law allocation of a disjoint /24 pool.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.netutils.ip import IPv4Prefix

__all__ = ["allocate_prefix_pool", "announcement_counts", "skew_summary"]

#: The pool prefixes are carved from: a /8 gives 65,536 disjoint /24s,
#: comfortably above any experiment in the paper's scaled-down range.
POOL_ROOT = IPv4Prefix("10.0.0.0/8")


def allocate_prefix_pool(count: int, root: IPv4Prefix = POOL_ROOT) -> List[IPv4Prefix]:
    """``count`` disjoint /24 prefixes carved from ``root`` in order."""
    if count < 0:
        raise ValueError("count must be non-negative")
    capacity = root.num_addresses // 256
    if count > capacity:
        raise ValueError(f"pool {root} holds only {capacity} /24s, need {count}")
    out: List[IPv4Prefix] = []
    base = int(root.network)
    for index in range(count):
        out.append(IPv4Prefix(base + index * 256, 24))
    return out


def announcement_counts(
    participants: int,
    total_prefixes: int,
    rng: random.Random,
    alpha: float = 1.6,
) -> List[int]:
    """Per-participant prefix counts following the AMS-IX skew.

    A power law with exponent ``alpha`` over the participant rank is
    scaled so the counts sum to ``total_prefixes``; every participant
    announces at least one prefix.  The default exponent lands the
    paper's two calibration points (top 1% > 50%, bottom 90% < ~1-5%)
    across the 100-300 participant range used in the evaluation.
    """
    if participants <= 0:
        return []
    if total_prefixes < participants:
        raise ValueError("need at least one prefix per participant")
    weights = [1.0 / (rank + 1) ** alpha for rank in range(participants)]
    scale = (total_prefixes - participants) / sum(weights)
    counts = [1 + int(weight * scale) for weight in weights]
    # Distribute rounding leftovers to the heaviest announcers.
    shortfall = total_prefixes - sum(counts)
    rank = 0
    while shortfall > 0:
        counts[rank % participants] += 1
        shortfall -= 1
        rank += 1
    # Tiny shuffle of the tail so equal-weight participants are not
    # deterministically ordered by rank alone.
    tail = counts[participants // 10 :]
    rng.shuffle(tail)
    counts[participants // 10 :] = tail
    return counts


def skew_summary(counts: Sequence[int]) -> Dict[str, float]:
    """The two skew statistics the paper cites, for validating a census."""
    total = sum(counts)
    if not counts or not total:
        return {"top_1pct_share": 0.0, "bottom_90pct_share": 0.0}
    ordered = sorted(counts, reverse=True)
    top_n = max(1, len(ordered) // 100)
    bottom_n = int(len(ordered) * 0.9)
    return {
        "top_1pct_share": sum(ordered[:top_n]) / total,
        "bottom_90pct_share": sum(ordered[len(ordered) - bottom_n :]) / total,
    }
