"""Synthetic BGP update traces with the paper's measured dynamics.

Section 4.3.2 and Table 1 characterize one week of RIPE RIS updates at
AMS-IX, DE-CIX and LINX; the incremental-compilation design leans on
three facts, all of which this generator reproduces as tunable knobs:

* only 10-14% of prefixes see any update at all (``active_fraction``);
* 75% of update bursts touch at most three prefixes
  (``burst_small_fraction`` / ``burst_small_max``), with a heavy tail;
* inter-burst gaps are at least 10 s in 75% of cases and over a minute
  half the time (modelled as a log-uniform mixture).
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.netutils.ip import IPv4Prefix
from repro.workloads.topology_gen import SyntheticIXP

__all__ = ["UpdateTrace", "generate_update_trace"]


class UpdateTrace(NamedTuple):
    """A generated trace plus the ground truth used to build it."""

    updates: List[BGPUpdate]
    active_prefixes: Tuple[IPv4Prefix, ...]
    burst_count: int
    duration: float


def _gap_sample(rng: random.Random) -> float:
    """Inter-burst gap: 25% short (2-10 s), 25% medium (10-60 s), 50% long.

    Chosen to land the paper's two quantiles: P(gap >= 10 s) = 0.75 and
    P(gap >= 60 s) = 0.5.
    """
    roll = rng.random()
    if roll < 0.25:
        return rng.uniform(2.0, 10.0)
    if roll < 0.5:
        return rng.uniform(10.0, 60.0)
    return rng.uniform(60.0, 600.0)


def _burst_size(rng: random.Random, small_fraction: float, small_max: int, tail_max: int) -> int:
    if rng.random() < small_fraction:
        return rng.randint(1, small_max)
    # Heavy tail: geometric-ish sizes up to tail_max.
    size = small_max + 1
    while size < tail_max and rng.random() < 0.6:
        size = min(tail_max, size * 2)
    return rng.randint(small_max + 1, max(small_max + 1, size))


def generate_update_trace(
    ixp: SyntheticIXP,
    bursts: int = 200,
    seed: int = 7,
    active_fraction: float = 0.12,
    burst_small_fraction: float = 0.75,
    burst_small_max: int = 3,
    burst_tail_max: int = 1000,
    withdrawal_probability: float = 0.15,
) -> UpdateTrace:
    """Generate a burst-structured update trace over an exchange's prefixes.

    Each burst touches a set of *active* prefixes; for every touched
    prefix the announcing participant either re-announces it with a
    perturbed AS path (a best-path change) or briefly withdraws and
    re-announces it.  Timestamps honour the inter-burst gap mixture.
    """
    rng = random.Random(seed)
    owner_of: Dict[IPv4Prefix, str] = {}
    for name, prefixes in ixp.announced.items():
        for prefix in prefixes:
            owner_of[prefix] = name
    all_prefixes = sorted(owner_of, key=str)
    if not all_prefixes:
        raise ValueError("the exchange announces no prefixes")
    active_count = max(1, int(len(all_prefixes) * active_fraction))
    active = rng.sample(all_prefixes, active_count)

    updates: List[BGPUpdate] = []
    now = 0.0
    for _ in range(bursts):
        now += _gap_sample(rng)
        size = min(
            _burst_size(rng, burst_small_fraction, burst_small_max, burst_tail_max),
            len(active),
        )
        touched = rng.sample(active, size)
        for prefix in touched:
            owner = owner_of[prefix]
            spec = ixp.config.participant(owner)
            port = spec.ports[rng.randrange(len(spec.ports))]
            origin_as = 64512 + (int(prefix.network) >> 8) % 1000
            attributes = RouteAttributes(
                as_path=[spec.asn, 63500 + rng.randrange(400), origin_as],
                next_hop=port.address,
            )
            if rng.random() < withdrawal_probability:
                updates.append(
                    BGPUpdate(owner, withdrawn=[Withdrawal(prefix)], time=now)
                )
                now += rng.uniform(0.01, 0.5)
                updates.append(
                    BGPUpdate(
                        owner,
                        announced=[Announcement(prefix, attributes)],
                        time=now,
                    )
                )
            else:
                updates.append(
                    BGPUpdate(
                        owner,
                        announced=[Announcement(prefix, attributes)],
                        time=now,
                    )
                )
            now += rng.uniform(0.0, 0.2)
    return UpdateTrace(
        updates=updates,
        active_prefixes=tuple(active),
        burst_count=bursts,
        duration=now,
    )
