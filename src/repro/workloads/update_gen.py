"""Synthetic BGP update traces with the paper's measured dynamics.

Section 4.3.2 and Table 1 characterize one week of RIPE RIS updates at
AMS-IX, DE-CIX and LINX; the incremental-compilation design leans on
three facts, all of which this generator reproduces as tunable knobs:

* only 10-14% of prefixes see any update at all (``active_fraction``);
* 75% of update bursts touch at most three prefixes
  (``burst_small_fraction`` / ``burst_small_max``), with a heavy tail;
* inter-burst gaps are at least 10 s in 75% of cases and over a minute
  half the time (modelled as a log-uniform mixture).

The generator tracks per-prefix announcement state through the trace,
seeded from the exchange's *actual* BGP table (``ixp.updates``), so a
withdrawal can never target a prefix its peer never announced — a
prefix whose session is down at trace start is brought up with an
announcement before it can churn.  :func:`validate_trace` is the
public checker the property tests (and the scenario suite, which
composes traces) pin that guarantee with.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.netutils.ip import IPv4Prefix
from repro.workloads.topology_gen import SyntheticIXP

__all__ = ["TraceValidationError", "UpdateTrace", "generate_update_trace", "validate_trace"]


class UpdateTrace(NamedTuple):
    """A generated trace plus the ground truth used to build it."""

    updates: List[BGPUpdate]
    active_prefixes: Tuple[IPv4Prefix, ...]
    burst_count: int
    duration: float


class TraceValidationError(AssertionError):
    """A generated/composed trace violates the trace validity contract."""


def _gap_sample(rng: random.Random) -> float:
    """Inter-burst gap: 25% short (2-10 s), 25% medium (10-60 s), 50% long.

    Chosen to land the paper's two quantiles: P(gap >= 10 s) = 0.75 and
    P(gap >= 60 s) = 0.5.
    """
    roll = rng.random()
    if roll < 0.25:
        return rng.uniform(2.0, 10.0)
    if roll < 0.5:
        return rng.uniform(10.0, 60.0)
    return rng.uniform(60.0, 600.0)


def _burst_size(rng: random.Random, small_fraction: float, small_max: int, tail_max: int) -> int:
    if rng.random() < small_fraction:
        return rng.randint(1, small_max)
    # Heavy tail: geometric-ish sizes up to tail_max.
    size = small_max + 1
    while size < tail_max and rng.random() < 0.6:
        size = min(tail_max, size * 2)
    return rng.randint(small_max + 1, max(small_max + 1, size))


def _initially_announced(
    ixp: SyntheticIXP, owner_of: Dict[IPv4Prefix, str]
) -> Set[IPv4Prefix]:
    """Prefixes whose *owner* actually announced them in ``ixp.updates``.

    ``ixp.announced`` records intended primary ownership; the BGP table
    is what the route server loaded.  The two differ when a session is
    down at trace start (scenario suites model exactly that), and only
    actually-announced prefixes are eligible for withdrawal events.
    """
    live: Set[IPv4Prefix] = set()
    for update in ixp.updates:
        for announcement in update.announced:
            if owner_of.get(announcement.prefix) == update.peer:
                live.add(announcement.prefix)
        for withdrawal in update.withdrawn:
            if owner_of.get(withdrawal.prefix) == update.peer:
                live.discard(withdrawal.prefix)
    return live


def generate_update_trace(
    ixp: SyntheticIXP,
    bursts: int = 200,
    seed: int = 7,
    active_fraction: float = 0.12,
    burst_small_fraction: float = 0.75,
    burst_small_max: int = 3,
    burst_tail_max: int = 1000,
    withdrawal_probability: float = 0.15,
) -> UpdateTrace:
    """Generate a burst-structured update trace over an exchange's prefixes.

    Each burst touches a set of *active* prefixes; for every touched
    prefix the announcing participant either re-announces it with a
    perturbed AS path (a best-path change) or briefly withdraws and
    re-announces it.  Timestamps honour the inter-burst gap mixture.

    Each burst touches a prefix at most once (no self-superseding
    updates inside one burst), and withdrawals only ever target a
    prefix its peer currently announces.
    """
    rng = random.Random(seed)
    owner_of: Dict[IPv4Prefix, str] = {}
    for name, prefixes in ixp.announced.items():
        for prefix in prefixes:
            owner_of[prefix] = name
    all_prefixes = sorted(owner_of, key=str)
    if not all_prefixes:
        raise ValueError("the exchange announces no prefixes")
    live = _initially_announced(ixp, owner_of)
    active_count = max(1, int(len(all_prefixes) * active_fraction))
    active = rng.sample(all_prefixes, active_count)

    updates: List[BGPUpdate] = []
    now = 0.0
    for _ in range(bursts):
        now += _gap_sample(rng)
        size = min(
            _burst_size(rng, burst_small_fraction, burst_small_max, burst_tail_max),
            len(active),
        )
        touched = rng.sample(active, size)
        for prefix in touched:
            owner = owner_of[prefix]
            spec = ixp.config.participant(owner)
            port = spec.ports[rng.randrange(len(spec.ports))]
            origin_as = 64512 + (int(prefix.network) >> 8) % 1000
            attributes = RouteAttributes(
                as_path=[spec.asn, 63500 + rng.randrange(400), origin_as],
                next_hop=port.address,
            )
            if prefix in live and rng.random() < withdrawal_probability:
                updates.append(
                    BGPUpdate(owner, withdrawn=[Withdrawal(prefix)], time=now)
                )
                now += rng.uniform(0.01, 0.5)
                updates.append(
                    BGPUpdate(
                        owner,
                        announced=[Announcement(prefix, attributes)],
                        time=now,
                    )
                )
            else:
                # Down-at-start prefixes are brought up by an ordinary
                # announcement (never a ghost withdrawal).
                updates.append(
                    BGPUpdate(
                        owner,
                        announced=[Announcement(prefix, attributes)],
                        time=now,
                    )
                )
            live.add(prefix)
            now += rng.uniform(0.0, 0.2)
    return UpdateTrace(
        updates=updates,
        active_prefixes=tuple(active),
        burst_count=bursts,
        duration=now,
    )


def validate_trace(
    ixp: SyntheticIXP,
    updates: Sequence[BGPUpdate],
    burst_gap: float = 1.0,
) -> None:
    """Check the trace validity contract; raise :class:`TraceValidationError`.

    Replays ``ixp.updates`` followed by ``updates`` through a per-peer
    announcement state machine and rejects:

    * **ghost withdrawals** — a withdrawal from a peer that does not
      currently announce the prefix (the route server's RFC 7606
      treat-as-withdraw path silently absorbs these, masking generator
      bugs);
    * **self-superseding updates** — the same (peer, prefix) announced
      twice within one burst (two events closer than ``burst_gap``)
      with no withdrawal in between: the first announcement is dead on
      arrival and skews burst statistics;
    * non-monotonic timestamps.
    """
    announced: Set[Tuple[str, IPv4Prefix]] = set()
    for update in ixp.updates:
        for announcement in update.announced:
            announced.add((update.peer, announcement.prefix))
        for withdrawal in update.withdrawn:
            announced.discard((update.peer, withdrawal.prefix))

    last_time: Optional[float] = None
    burst_announced: Set[Tuple[str, IPv4Prefix]] = set()
    for index, update in enumerate(updates):
        if last_time is not None and update.time < last_time:
            raise TraceValidationError(
                f"update #{index} at t={update.time} arrives before "
                f"t={last_time}: trace is not time-ordered"
            )
        if last_time is None or update.time - last_time > burst_gap:
            burst_announced.clear()
        last_time = update.time
        for withdrawal in update.withdrawn:
            key = (update.peer, withdrawal.prefix)
            if key not in announced:
                raise TraceValidationError(
                    f"ghost withdrawal: update #{index} withdraws "
                    f"{withdrawal.prefix} from {update.peer!r}, which "
                    "never announced it"
                )
            announced.discard(key)
            burst_announced.discard(key)
        for announcement in update.announced:
            key = (update.peer, announcement.prefix)
            if key in burst_announced:
                raise TraceValidationError(
                    f"self-superseding update: #{index} re-announces "
                    f"{announcement.prefix} from {update.peer!r} within "
                    "the same burst"
                )
            announced.add(key)
            burst_announced.add(key)
