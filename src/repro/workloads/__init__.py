"""Synthetic workloads calibrated to the paper's §6.1 methodology."""

from repro.workloads.federation_gen import SyntheticFederation, generate_federation
from repro.workloads.policy_gen import PolicyWorkload, generate_policies
from repro.workloads.serialization import (
    dump_updates,
    dumps_updates,
    load_updates,
    loads_updates,
)
from repro.workloads.prefixes import (
    allocate_prefix_pool,
    announcement_counts,
    skew_summary,
)
from repro.workloads.topology_gen import ASCategory, SyntheticIXP, generate_ixp
from repro.workloads.update_gen import UpdateTrace, generate_update_trace

__all__ = [
    "ASCategory",
    "PolicyWorkload",
    "SyntheticFederation",
    "SyntheticIXP",
    "UpdateTrace",
    "allocate_prefix_pool",
    "announcement_counts",
    "dump_updates",
    "dumps_updates",
    "generate_federation",
    "generate_ixp",
    "generate_policies",
    "generate_update_trace",
    "load_updates",
    "loads_updates",
    "skew_summary",
]
