"""Synthetic multi-IXP federations for scale tests and benchmarks.

:func:`generate_federation` builds, deterministically from a seed, a
:class:`~repro.federation.exchange.FederatedExchange` with

* N member exchanges, each with its own local participants announcing
  disjoint /24 prefixes;
* K transit ASes present at *every* exchange (one port per IXP, shared
  ASN — the federation's join points), fully meshed with directed
  :class:`~repro.federation.exchange.InterIXPLink` relays so every
  member exchange learns every prefix;
* a §6.1-style policy sprinkle: a fraction of the local participants
  steer one application port to a transit, which is what creates real
  inter-IXP forwarding (and what the federation verifier's re-entry
  graph has to reason about).

The generator returns the federation synced and compiled by default so
benchmarks can measure a steady state; pass ``converge=False`` to time
:meth:`~repro.federation.exchange.FederatedExchange.sync` itself.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.federation.exchange import FederatedExchange
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix
from repro.policy import fwd, match

__all__ = ["SyntheticFederation", "generate_federation"]

#: application ports the policy sprinkle steers (workload generator mix)
_POLICY_PORTS = (80, 443, 8080)


class SyntheticFederation(NamedTuple):
    """A generated federation plus the knobs that shaped it."""

    federation: FederatedExchange
    transit_asns: Tuple[int, ...]
    prefixes: Tuple[IPv4Prefix, ...]
    seed: int

    @property
    def exchange_names(self) -> Tuple[str, ...]:
        return self.federation.exchange_names()


def generate_federation(
    exchanges: int = 2,
    participants_per_exchange: int = 4,
    transits: int = 2,
    prefixes_per_participant: int = 2,
    policy_fraction: float = 0.5,
    seed: int = 0,
    converge: bool = True,
    **controller_kwargs,
) -> SyntheticFederation:
    """Generate a synthetic federation (see module docstring).

    ``controller_kwargs`` forward to every member
    :class:`~repro.core.controller.SDXController` — e.g.
    ``sdx=SDXConfig(vmac_mode="superset")`` to exercise an encoding
    across the whole federation.
    """
    if exchanges < 2:
        raise ValueError("a federation needs at least two exchanges")
    if transits < 1:
        raise ValueError("a federation needs at least one transit AS")
    rng = random.Random(seed)
    federation = FederatedExchange()
    names = [f"ix{index}" for index in range(exchanges)]
    transit_asns = tuple(65000 + index for index in range(transits))
    prefixes: List[IPv4Prefix] = []

    for ex_index, ex_name in enumerate(names):
        config = IXPConfig(vnh_pool="172.16.0.0/12", name=ex_name)
        for t_index, asn in enumerate(transit_asns):
            config.add_participant(
                f"T{t_index}",
                asn,
                [(
                    f"{ex_name}-T{t_index}",
                    f"172.0.{ex_index * 8 + t_index}.1",
                    f"08:00:30:{ex_index:02x}:{t_index:02x}:01",
                )],
            )
        for p_index in range(participants_per_exchange):
            config.add_participant(
                f"P{p_index}",
                66000 + ex_index * 100 + p_index,
                [(
                    f"{ex_name}-P{p_index}",
                    f"172.0.{ex_index * 8 + transits}.{p_index + 1}",
                    f"08:00:31:{ex_index:02x}:{p_index:02x}:01",
                )],
            )
        federation.add_exchange(ex_name, config, **controller_kwargs)

    # Local announcements: disjoint /24s per participant, per exchange.
    for ex_index, ex_name in enumerate(names):
        controller = federation.exchange(ex_name)
        for p_index in range(participants_per_exchange):
            name = f"P{p_index}"
            spec = controller.config.participant(name)
            origin_as = 64512 + rng.randrange(500)
            for k in range(prefixes_per_participant):
                prefix = IPv4Prefix(
                    f"10.{ex_index * 32 + p_index}.{k}.0/24"
                )
                prefixes.append(prefix)
                controller.routing.announce(
                    name,
                    prefix,
                    RouteAttributes(
                        as_path=[spec.asn, origin_as],
                        next_hop=spec.ports[0].address,
                    ),
                )

    # Full transit mesh: every transit relays every directed pair.
    for asn in transit_asns:
        for src in names:
            for dst in names:
                if src != dst:
                    federation.link(asn, src, dst)

    # Policy sprinkle: some locals steer one application port to a transit.
    for ex_name in names:
        controller = federation.exchange(ex_name)
        for p_index in range(participants_per_exchange):
            if rng.random() >= policy_fraction:
                continue
            transit_name = f"T{rng.randrange(transits)}"
            handle = controller.register_participant(f"P{p_index}")
            handle.set_policies(
                outbound=match(dstport=rng.choice(_POLICY_PORTS))
                >> fwd(transit_name),
                recompile=False,
            )

    if converge:
        federation.sync()
        federation.compile_all()
    return SyntheticFederation(federation, transit_asns, tuple(prefixes), seed)
