"""Compile shards: the per-segment unit of (parallel) compilation.

A *shard* produces one provenance segment of the final flow table:

* ``("policy", name)`` — a participant's outbound policy, VMAC-encoded
  against the current FEC table, sealed, pinned to the participant's
  ports, and composed with the second stage;
* ``("chains",)`` — the service-chain continuation block, composed;
* ``("default",)`` — the shared default-forwarding block, composed.

:func:`run_shard` is a *pure function* of its :class:`ShardTask`: it
reads no controller state, which is what lets the pipeline run it in a
forked worker process or replay it from cache.  Failures never escape
— they come back in ``ShardResult.error`` so the scheduler can decide
between quarantining a participant (policy shards) and aborting the
compilation (shared shards).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, NamedTuple, Optional, Tuple

from repro.core.fec import FECTable
from repro.core.transforms import isolate, vmacify_outbound
from repro.netutils.ip import IPv4Prefix
from repro.policy.analysis import with_fallback
from repro.policy.classifier import Classifier, Rule, sequence_rule

__all__ = [
    "ShardResult",
    "ShardTask",
    "label_participant",
    "policy_label",
    "run_shard",
    "segment_targets",
]

_EMPTY = Classifier()


def policy_label(name: str) -> Tuple[str, str]:
    """The shard/segment label of one participant's policy block.

    The same tuple keys the pipeline's shard cache and — prefixed with
    the base cookie — tags the segment's flow rules, which is what lets
    the commit guard trace a counterexample's provenance back to a
    cache entry to drop and a participant to quarantine.
    """
    return ("policy", name)


def label_participant(label: Tuple) -> Optional[str]:
    """The participant behind a shard/segment label, if it has one."""
    if len(label) >= 2 and label[0] == "policy":
        return label[1]
    return None


class ShardTask(NamedTuple):
    """Everything one shard compilation reads (nothing else)."""

    #: provenance label: ("policy", name) / ("chains",) / ("default",)
    label: Tuple
    #: participant name for policy shards, None for shared shards
    participant: Optional[str]
    #: policy shards: the raw compiled outbound classifier;
    #: shared shards: the already-built stage-1 block (composed as-is)
    raw: Classifier
    #: physical ports the stage-1 block is pinned to (policy shards)
    port_ids: Tuple[str, ...]
    #: every configured participant name (virtual-location universe)
    participant_names: FrozenSet[str]
    #: target -> prefixes reachable via target (policy shards)
    reachable: Mapping[str, FrozenSet[IPv4Prefix]]
    #: the FEC partition this compilation runs against
    fec_table: Optional[FECTable]
    #: the full second-stage block map (consulted per forwarding action)
    stage2_blocks: Mapping[Any, Classifier]


class ShardResult(NamedTuple):
    """One shard's outputs (or its failure)."""

    label: Tuple
    participant: Optional[str]
    #: the (possibly transformed) stage-1 block, for ``result.stage1``
    stage1_block: Optional[Classifier]
    #: the composed segment (may be empty)
    segment: Optional[Classifier]
    #: (exception type name, message) when the shard failed
    error: Optional[Tuple[str, str]]


def _compose(stage1_block: Classifier, stage2_blocks: Mapping[Any, Classifier]) -> Classifier:
    """Sequential composition with target pruning (Section 4.3.1).

    Identical to the legacy compiler's ``_compose`` on the default
    options: every stage-1 action consults only the second-stage block
    of the location it forwards to.
    """
    rules: List[Rule] = []
    for rule in stage1_block.rules:
        rules.extend(
            sequence_rule(rule, lambda action: stage2_blocks.get(action.output_port))
        )
    return Classifier(rules).optimized()


def run_shard(task: ShardTask) -> ShardResult:
    """Compile one shard; exceptions are captured, never raised."""
    try:
        if task.label[0] == "policy":
            reachable_map = task.reachable

            def reachable(target: str) -> FrozenSet[IPv4Prefix]:
                return reachable_map.get(target, frozenset())

            vmacified = vmacify_outbound(
                task.raw, task.participant_names, reachable, task.fec_table
            )
            sealed = with_fallback(vmacified, _EMPTY)
            stage1_block = isolate(sealed, task.port_ids)
        else:
            stage1_block = task.raw
        segment = _compose(stage1_block, task.stage2_blocks)
        return ShardResult(task.label, task.participant, stage1_block, segment, None)
    except Exception as exc:  # noqa: BLE001 - shard faults are data
        return ShardResult(
            task.label, task.participant, None, None, (type(exc).__name__, str(exc))
        )


def segment_targets(stage1_block: Classifier) -> FrozenSet[Any]:
    """The second-stage locations a stage-1 block's composition consults."""
    targets = set()
    for rule in stage1_block.rules:
        for action in rule.actions:
            if action.output_port is not None:
                targets.add(action.output_port)
    return frozenset(targets)
