"""Compile shards: participant-local compilation units.

A *shard* is one participant's self-contained controller (or a shared
segment), producing one provenance segment of the final flow table:

* ``("policy", name)`` — a participant's outbound policy, VMAC-encoded
  against the current FEC table, sealed, pinned to the participant's
  ports, and composed with the second stage;
* ``("chains",)`` — the service-chain continuation block, composed;
* ``("default",)`` — the shared default-forwarding block, composed.

A policy shard never reads the route server: it compiles against a
:class:`ParticipantRIBView` — a materialized snapshot of exactly the
slice of BGP state the participant is entitled to see (its peers'
export-filtered routes, plus the ranked routes it announced itself,
for delivery).  The central pipeline retains only the cross-participant
authorities — the FEC partition, VNH/VMAC allocation, ARP — and the
final rule merge.

:func:`run_shard` is a *pure function* of its :class:`ShardTask`: it
reads no controller state, which is what lets the pipeline run it in a
forked worker process or replay it from cache.  Failures never escape
— they come back in ``ShardResult.error`` so the scheduler can decide
between quarantining a participant (policy shards) and aborting the
compilation (shared shards).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, NamedTuple, Optional, Tuple

from repro.bgp.messages import Route
from repro.core.fec import FECTable, PrefixGroup
from repro.core.supersets import (
    default_delivery_classifier_superset,
    vmacify_outbound_superset,
)
from repro.core.transforms import (
    default_delivery_classifier,
    isolate,
    rewrite_inbound_delivery,
    vmacify_outbound,
)
from repro.ixp.topology import IXPConfig, ParticipantSpec
from repro.netutils.ip import IPv4Prefix
from repro.policy.analysis import with_fallback
from repro.policy.classifier import Classifier, Rule, sequence_rule

__all__ = [
    "ParticipantRIBView",
    "ShardResult",
    "ShardTask",
    "compile_delivery",
    "label_participant",
    "policy_label",
    "run_shard",
    "segment_targets",
]

_EMPTY = Classifier()


class ParticipantRIBView(NamedTuple):
    """One participant's scoped, materialized slice of BGP state.

    This is everything a participant-local compilation is entitled to
    read: what its peers export *to it* (the BGP-consistency filters of
    its outbound policy) and the ranked routes *it announced* (its
    delivery rules).  Views are plain data — comparable for shard-cache
    validation and inheritable across a worker fork — and are built by
    the central pipeline, which remains the RIB/ARP authority.
    """

    participant: str
    #: peer -> the peer's export-filtered prefixes, as seen by this
    #: participant (``loc_rib(participant).prefixes_via(peer)``)
    exports: Mapping[str, FrozenSet[IPv4Prefix]]
    #: FEC prefix-set -> the ranked routes this participant announced
    #: for that class (group ids renumber between passes; prefix sets
    #: are the stable key)
    announced: Mapping[FrozenSet[IPv4Prefix], Tuple[Route, ...]]

    def reachable(self, target: str) -> FrozenSet[IPv4Prefix]:
        """The prefixes this participant may steer toward ``target``."""
        return self.exports.get(target, frozenset())

    def ranked_routes(self, group: PrefixGroup) -> Tuple[Route, ...]:
        """The announced-route slice for one FEC (delivery's input)."""
        return self.announced.get(group.prefixes, ())


def policy_label(name: str) -> Tuple[str, str]:
    """The shard/segment label of one participant's policy block.

    The same tuple keys the pipeline's shard cache and — prefixed with
    the base cookie — tags the segment's flow rules, which is what lets
    the commit guard trace a counterexample's provenance back to a
    cache entry to drop and a participant to quarantine.
    """
    return ("policy", name)


def label_participant(label: Tuple) -> Optional[str]:
    """The participant behind a shard/segment label, if it has one."""
    if len(label) >= 2 and label[0] == "policy":
        return label[1]
    return None


class ShardTask(NamedTuple):
    """Everything one shard compilation reads (nothing else)."""

    #: provenance label: ("policy", name) / ("chains",) / ("default",)
    label: Tuple
    #: participant name for policy shards, None for shared shards
    participant: Optional[str]
    #: policy shards: the raw compiled outbound classifier;
    #: shared shards: the already-built stage-1 block (composed as-is)
    raw: Classifier
    #: physical ports the stage-1 block is pinned to (policy shards)
    port_ids: Tuple[str, ...]
    #: every configured participant name (virtual-location universe)
    participant_names: FrozenSet[str]
    #: target -> prefixes reachable via target (policy shards); mirrors
    #: ``rib_view.exports`` — kept flat for cache-signature comparison
    reachable: Mapping[str, FrozenSet[IPv4Prefix]]
    #: the FEC partition this compilation runs against
    fec_table: Optional[FECTable]
    #: the full second-stage block map (consulted per forwarding action)
    stage2_blocks: Mapping[Any, Classifier]
    #: the participant's scoped RIB snapshot (policy shards)
    rib_view: Optional[ParticipantRIBView] = None
    #: VMAC encoding scheme this shard compiles under
    mode: str = "fec"
    #: superset mode: the encoder registry snapshot (a SupersetView)
    encoder: Optional[Any] = None
    #: False in the multi-table layout: the stage-1 block *is* the
    #: segment (table 0, goto stage 2) and composition is skipped
    compose: bool = True


class ShardResult(NamedTuple):
    """One shard's outputs (or its failure)."""

    label: Tuple
    participant: Optional[str]
    #: the (possibly transformed) stage-1 block, for ``result.stage1``
    stage1_block: Optional[Classifier]
    #: the composed segment (may be empty)
    segment: Optional[Classifier]
    #: (exception type name, message) when the shard failed
    error: Optional[Tuple[str, str]]


def _compose(stage1_block: Classifier, stage2_blocks: Mapping[Any, Classifier]) -> Classifier:
    """Sequential composition with target pruning (Section 4.3.1).

    Identical to the legacy compiler's ``_compose`` on the default
    options: every stage-1 action consults only the second-stage block
    of the location it forwards to.
    """
    rules: List[Rule] = []
    for rule in stage1_block.rules:
        rules.extend(
            sequence_rule(rule, lambda action: stage2_blocks.get(action.output_port))
        )
    return Classifier(rules).optimized()


def run_shard(task: ShardTask) -> ShardResult:
    """Compile one shard; exceptions are captured, never raised."""
    try:
        if task.label[0] == "policy":
            if task.rib_view is not None:
                reachable = task.rib_view.reachable
            else:
                reachable_map = task.reachable

                def reachable(target: str) -> FrozenSet[IPv4Prefix]:
                    return reachable_map.get(target, frozenset())

            if task.mode == "superset":
                vmacified = vmacify_outbound_superset(
                    task.raw,
                    task.participant_names,
                    reachable,
                    task.fec_table,
                    task.encoder,
                )
            else:
                vmacified = vmacify_outbound(
                    task.raw, task.participant_names, reachable, task.fec_table
                )
            sealed = with_fallback(vmacified, _EMPTY)
            stage1_block = isolate(sealed, task.port_ids)
        else:
            stage1_block = task.raw
        if task.compose:
            segment = _compose(stage1_block, task.stage2_blocks)
        else:
            # Multi-table layout: the stage-1 block is installed as-is
            # (table 0) and chains into the merged stage-2 table.
            segment = stage1_block
        return ShardResult(task.label, task.participant, stage1_block, segment, None)
    except Exception as exc:  # noqa: BLE001 - shard faults are data
        return ShardResult(
            task.label, task.participant, None, None, (type(exc).__name__, str(exc))
        )


def compile_delivery(
    spec: ParticipantSpec,
    view: ParticipantRIBView,
    inbound: Classifier,
    config: IXPConfig,
    fec_table: FECTable,
    mode: str = "fec",
    encoder: Optional[Any] = None,
) -> Classifier:
    """One participant's second-stage block, from its own RIB view.

    The participant-local half of ``defP``: the inbound policy (with
    physical-port forwards rewritten to set interface MACs) sealed over
    default delivery, pinned to the participant's virtual switch.
    Everything it reads about BGP comes from ``view.announced`` — the
    routes this participant announced — so a shard can build it without
    the route server.
    """
    delivery_ready = rewrite_inbound_delivery(inbound, config)
    if mode == "superset":
        default = default_delivery_classifier_superset(
            spec, fec_table, view.ranked_routes, encoder
        )
    else:
        default = default_delivery_classifier(spec, fec_table, view.ranked_routes)
    combined = with_fallback(delivery_ready, default)
    return isolate(combined, [spec.name])


def segment_targets(stage1_block: Classifier) -> FrozenSet[Any]:
    """The second-stage locations a stage-1 block's composition consults."""
    targets = set()
    for rule in stage1_block.rules:
        for action in rule.actions:
            if action.output_port is not None:
                targets.add(action.output_port)
    return frozenset(targets)
