"""The staged compilation pipeline (the controller's engine room).

``CompilationPipeline`` replaces the monolithic ``compile()`` body of
the old ``SDXController`` with explicit stages:

1. **AST** — participant policy ASTs to classifiers (memoized in the
   compiler), quarantining any participant whose policy raises;
2. **FEC** — policy-group extraction (cached per participant), BGP
   fingerprinting, and the minimum-disjoint-subsets partition, with
   VNH *reconciliation*: a prefix group that survives a recompilation
   keeps its (VNH, VMAC) pair, so routers don't re-ARP and — more
   importantly — unchanged shards can reuse their cached blocks;
   superseded VNHs are released only after a successful fabric commit
   (a rolled-back commit leaves the old advertisements resolving);
3. **stage-2 build** — delivery, egress, and chain-entry blocks plus
   the default-forwarding block (cheap, rebuilt serially every pass);
4. **shards** — per-participant compile shards plus the shared
   ``chains``/``default`` segments, each revalidated against a
   signature (policy set, reachability map, covering FEC groups,
   consulted stage-2 blocks); only *dirty* shards are recompiled, on
   the configured :class:`~repro.pipeline.backend.ExecutionBackend`;
5. **assemble** — disjoint concatenation in configuration order,
   advertisement map, stats (fed to the legacy compile metrics so
   dashboards keep working).

A shard failure quarantines its participant and restarts the pass
(the FEC partition must be recomputed without the culprit's groups),
mirroring the old retry-without-culprit loop without its O(N) probe
compiles.  Failures in the shared segments are unattributable and
propagate.

Fresh-cache compilations are *byte-identical* to the legacy
``SDXCompiler.compile``: extraction runs in the same order, the
partition enumerates buckets with the same sort key, and new VNHs are
allocated in the same sequence.  Incremental compilations stay
byte-identical to a legacy compile replaying the same VNH assignment
(see ``tests/property/test_pipeline_equivalence.py``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.bgp.messages import Route
from repro.core.chaining import (
    ServiceChain,
    chain_continuation_rules,
    chain_entry_block,
    validate_chains,
)
from repro.core.compiler import CompilationResult, CompilationStats
from repro.core.fec import FECTable, PrefixGroup
from repro.core.participant import SDXPolicySet
from repro.core.supersets import (
    default_forwarding_classifier_superset,
    encoding_inputs,
)
from repro.core.transforms import (
    concat_disjoint,
    default_forwarding_classifier,
    extract_policy_groups,
    isolate,
)
from repro.core.vmac import VirtualNextHop, VirtualNextHopAllocator
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.resilience.health import QuarantineRecord

from repro.pipeline.backend import ExecutionBackend, backend_from_env
from repro.pipeline.events import (
    ChainsChanged,
    CommitApplied,
    CompileFinished,
    DirtyTracker,
    EventBus,
    PolicyChanged,
    QuarantineLifted,
    RoutesChanged,
)
from repro.pipeline.shards import (
    ParticipantRIBView,
    ShardResult,
    ShardTask,
    compile_delivery,
    policy_label,
    run_shard,
    segment_targets,
)
from repro.pipeline.stages import FabricCommitter, UpdateIngress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["CompilationPipeline"]

_EMPTY = Classifier()


class _ShardEntry(NamedTuple):
    """One shard's cached inputs-signature and outputs."""

    policy_set: Optional[SDXPolicySet]
    reachable: Optional[Dict[str, FrozenSet[IPv4Prefix]]]
    group_sig: Optional[FrozenSet]
    raw: Classifier
    target_blocks: Dict[Any, Optional[Classifier]]
    stage1_block: Classifier
    segment: Classifier
    #: superset mode only: (epoch, every affected group's (prefixes,
    #: VMAC)) — masked-rule validity depends on *other* participants'
    #: classes sharing a superset, so any encoding change dirties the
    #: shard; None in per-FEC mode
    encoding_sig: Optional[Tuple] = None


class _ExtractEntry(NamedTuple):
    """Cached policy-group extraction for one participant."""

    classifier: Classifier
    reachable: Dict[str, FrozenSet[IPv4Prefix]]
    groups: List[FrozenSet[IPv4Prefix]]


class CompilationPipeline:
    """Stages, shard cache, and scheduling for one controller."""

    def __init__(
        self,
        controller: "SDXController",
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.controller = controller
        self.backend = backend if backend is not None else backend_from_env()
        self.bus = EventBus()
        self.dirty = DirtyTracker()
        self.ingress = UpdateIngress(self)
        self.committer = FabricCommitter(self)

        #: shard label -> cached signature + blocks
        self._shard_cache: Dict[Tuple, _ShardEntry] = {}
        #: participant -> cached policy-group extraction
        self._extract_cache: Dict[str, _ExtractEntry] = {}
        #: frozenset(prefixes) -> VNH kept across compilations
        self._vnh_by_key: Dict[FrozenSet[IPv4Prefix], VirtualNextHop] = {}
        #: superset mode: frozenset(prefixes) -> (encoding inputs,
        #: encoder epoch) the kept VMAC was minted under; reuse is only
        #: sound while both still match (a stale attribute VMAC would
        #: steer masked rules wrongly)
        self._vnh_meta: Dict[FrozenSet[IPv4Prefix], Tuple[Tuple, int]] = {}
        #: VNHs superseded by a compile, released after its commit
        self._pending_release: List[VirtualNextHop] = []
        #: advertisement map cache (valid while routes/VNHs unchanged)
        self._advert_cache: Optional[Dict[Tuple[str, IPv4Prefix], IPv4Address]] = None

        telemetry = controller.telemetry
        self._m_stage = telemetry.histogram(
            "sdx_pipeline_stage_seconds",
            "Time spent per pipeline stage",
            labels=("stage",),
        )
        self._m_shards = telemetry.counter(
            "sdx_shard_compiles_total",
            "Compile-shard executions (cache misses) per segment",
            labels=("participant",),
        )
        self._m_shard_cache = telemetry.counter(
            "sdx_shard_cache_total",
            "Compile-shard cache lookups",
            labels=("result",),
        )
        self._m_noop = telemetry.counter(
            "sdx_pipeline_noop_total",
            "Background recompilations skipped because nothing was dirty",
        )
        self._m_passes = telemetry.counter(
            "sdx_pipeline_passes_total",
            "Compilation passes (restarts after shard quarantine included)",
        )
        self._m_dirty = telemetry.gauge(
            "sdx_pipeline_dirty_participants",
            "Participants with policy changes awaiting recompilation",
        )

        self.bus.subscribe(PolicyChanged, self._on_policy_event)
        self.bus.subscribe(QuarantineLifted, self._on_policy_event)
        self.bus.subscribe(ChainsChanged, lambda event: self.dirty.mark_chains())
        self.bus.subscribe(RoutesChanged, lambda event: self.dirty.mark_routes())

    # -- event handling -----------------------------------------------------

    def _on_policy_event(self, event) -> None:
        self.dirty.mark_policy(event.participant)
        self._m_dirty.set(len(self.dirty.participants))

    def note_route_changes(self, changes) -> None:
        if changes:
            self.bus.publish(RoutesChanged(len(changes)))

    @property
    def idle(self) -> bool:
        """True when a recompilation would reproduce the last result."""
        return not self.dirty.any

    def count_noop(self) -> None:
        self._m_noop.inc()

    def live_vnh_addresses(self) -> FrozenSet[IPv4Address]:
        """Every VNH address the pipeline currently accounts for.

        The live FEC-group VNHs plus those superseded-but-unreleased
        until the next commit (:attr:`_pending_release`).  The
        verification layer's leak check compares the allocator against
        this set unioned with the fast path's per-prefix VNHs — any
        difference is a pool leak or a dangling reference.
        """
        addresses = {vnh.address for vnh in self._vnh_by_key.values()}
        addresses.update(vnh.address for vnh in self._pending_release)
        return frozenset(addresses)

    def on_committed(self, result: CompilationResult) -> List[VirtualNextHop]:
        """Commit checkpoint: clear dirty state, release superseded VNHs.

        Returns the VNHs released by this commit so a *deferred* guard
        verification can re-reserve them if the commit later proves bad
        (see ``CommitGuard.begin_deferred``).
        """
        self.dirty.clear()
        self._m_dirty.set(0)
        pending, self._pending_release = self._pending_release, []
        for vnh in pending:
            self.controller.allocator.release(vnh.address)
        self.bus.publish(CommitApplied(len(result.classifier)))
        return pending

    # -- main entry point ---------------------------------------------------

    def compile(self) -> CompilationResult:
        """Run the staged pipeline (or the legacy path for ablation options).

        Inline trampoline over :meth:`compile_steps`: stage markers are
        ignored and in-flight shard futures are waited on immediately,
        which reproduces the old blocking barrier byte-for-byte.
        """
        steps = self.compile_steps()
        while True:
            try:
                token = next(steps)
            except StopIteration as stop:
                return stop.value
            if token[0] == "wait":
                token[1].wait()

    def compile_steps(self):
        """Generator form of the compile loop, with explicit yield points.

        Yields ``("stage", name)`` after each serial stage and
        ``("wait", future)`` while a shard batch is in flight on the
        backend; :class:`~repro.runtime.ControlPlaneRuntime` uses these
        points to overlap guard verification of the previous commit (and
        general bookkeeping) with this compilation.  Nothing may mutate
        controller state at a yield point — the runtime only runs
        side-effect-free work under an in-flight pass, which is what
        keeps both drivers byte-identical.  The compiled result is the
        generator's return value.
        """
        options = self.controller.options
        if not (options.prune_targets and options.disjoint_concat and options.memoize):
            # The ablation configurations change the *shape* of the
            # composition (full stage-2 scans, monolithic concat); the
            # legacy compiler remains their reference implementation.
            return self._compile_legacy()
        attempts = 0
        while True:
            attempts += 1
            self._m_passes.inc()
            result = yield from self._compile_pass_steps(attempts)
            if result is not None:
                return result

    # -- the staged pass ----------------------------------------------------

    def _compile_pass_steps(self, attempts: int):
        """One pass over all stages; returns None for "quarantined, restart"."""
        controller = self.controller
        compiler = controller.compiler
        config = controller.config
        started = compiler._now()

        active = {
            name: policy_set
            for name, policy_set in controller._policies.items()
            if name not in controller._quarantined
        }
        chains = list(controller._chains.values())
        validate_chains(chains, config)
        chain_hop_ports = {hop for chain in chains for hop in chain.hops}
        participant_names = frozenset(config.participant_names())

        # Stage 1: policy ASTs -> classifiers (fault isolated per participant).
        phase = compiler._now()
        out_raw: Dict[str, Classifier] = {}
        in_raw: Dict[str, Classifier] = {}
        for name in config.participant_names():
            policy_set = active.get(name)
            if policy_set is None:
                continue
            try:
                if policy_set.outbound is not None:
                    out_raw[name] = compiler._compile_ast(policy_set.outbound)
                if policy_set.inbound is not None:
                    in_raw[name] = compiler._compile_ast(policy_set.inbound)
            except Exception as exc:  # noqa: BLE001 - isolate the participant
                self._quarantine(name, type(exc).__name__, str(exc), attempts)
                active.pop(name, None)
                out_raw.pop(name, None)
                in_raw.pop(name, None)
        ast_seconds = compiler._now() - phase
        self._m_stage.observe(ast_seconds, stage="ast")
        yield ("stage", "ast")

        # Stage 2: prefix groups + FEC partition with VNH reconciliation.
        phase = compiler._now()
        reachable_maps: Dict[str, Dict[str, FrozenSet[IPv4Prefix]]] = {}
        policy_groups: List[FrozenSet[IPv4Prefix]] = []
        for name, classifier in out_raw.items():
            reachable = self._materialize_reachable(name, classifier, participant_names)
            reachable_maps[name] = reachable
            cached = self._extract_cache.get(name)
            if (
                cached is not None
                and cached.classifier == classifier
                and cached.reachable == reachable
            ):
                groups = cached.groups
            else:
                groups = extract_policy_groups(
                    classifier,
                    participant_names,
                    lambda target, _r=reachable: _r.get(target, frozenset()),
                )
                self._extract_cache[name] = _ExtractEntry(classifier, reachable, groups)
            policy_groups.extend(groups)
        originated = controller.routing.originated()
        for name, prefixes in originated.items():
            if prefixes:
                policy_groups.append(frozenset(prefixes))
        fec_table, fec_changed = self._reconcile_fec(
            policy_groups, compiler._fingerprint, controller.allocator
        )
        ranked_cache: Dict[int, Tuple[Route, ...]] = {}

        def ranked_routes(group: PrefixGroup) -> Tuple[Route, ...]:
            cached_routes = ranked_cache.get(group.group_id)
            if cached_routes is None:
                sample = next(iter(group.prefixes))
                cached_routes = controller.route_server.ranked_routes(sample)
                ranked_cache[group.group_id] = cached_routes
            return cached_routes

        fec_seconds = compiler._now() - phase
        self._m_stage.observe(fec_seconds, stage="fec")
        yield ("stage", "fec")

        # Encoding context for this pass.  The encoder view is a frozen
        # registry snapshot: shards read it without touching (or racing
        # on) the live encoder, and it crosses a worker fork as data.
        mode = controller.vmac_mode
        encoder = controller.superset_encoder
        encoder_view = encoder.view() if encoder is not None else None
        multitable = controller.dataplane_mode == "multitable"
        if mode == "superset":
            # Masked superset rules read *other* participants' encodings
            # (the carriers index), so shard-cache validity must cover
            # the whole encoding state, not just the shard's universe.
            encoding_sig = (
                encoder.epoch,
                frozenset(
                    (group.prefixes, group.vnh.hardware)
                    for group in fec_table.affected_groups
                ),
            )
        else:
            encoding_sig = None
        views = self._build_rib_views(reachable_maps, fec_table, ranked_routes)

        # Stage 3: second-stage blocks + shared stage-1 blocks (serial).
        phase = compiler._now()
        stage2_blocks, default_block, continuation, stage2_failures = (
            self._build_shared_blocks(
                in_raw,
                fec_table,
                ranked_routes,
                chains,
                chain_hop_ports,
                views,
                mode,
                encoder_view,
            )
        )
        stage2_seconds = compiler._now() - phase
        self._m_stage.observe(stage2_seconds, stage="stage2")
        yield ("stage", "stage2")
        if stage2_failures:
            for name, (error_type, message) in stage2_failures.items():
                self._quarantine(name, error_type, message, attempts)
            return None

        # Stage 4: shard scheduling — reuse cached blocks, compile the rest.
        phase = compiler._now()
        plan: List[Tuple[Tuple, Optional[ShardTask], Optional[_ShardEntry]]] = []
        for participant in config.participants():
            raw = out_raw.get(participant.name)
            if raw is None or participant.is_remote:
                continue
            label = policy_label(participant.name)
            entry = self._shard_cache.get(label)
            reachable = reachable_maps.get(participant.name, {})
            if entry is not None and self._policy_entry_valid(
                entry,
                active[participant.name],
                reachable,
                fec_table,
                stage2_blocks,
                encoding_sig,
            ):
                self._m_shard_cache.inc(result="hit")
                plan.append((label, None, entry))
            else:
                self._m_shard_cache.inc(result="miss")
                plan.append(
                    (
                        label,
                        ShardTask(
                            label=label,
                            participant=participant.name,
                            raw=raw,
                            port_ids=tuple(participant.port_ids),
                            participant_names=participant_names,
                            reachable=reachable,
                            fec_table=fec_table,
                            stage2_blocks=stage2_blocks,
                            rib_view=views.get(participant.name),
                            mode=mode,
                            encoder=encoder_view,
                            compose=not multitable,
                        ),
                        None,
                    )
                )
        for label, block in ((("chains",), continuation), (("default",), default_block)):
            entry = self._shard_cache.get(label)
            if entry is not None and self._shared_entry_valid(
                entry, block, stage2_blocks
            ):
                self._m_shard_cache.inc(result="hit")
                plan.append((label, None, entry))
            else:
                self._m_shard_cache.inc(result="miss")
                plan.append(
                    (
                        label,
                        ShardTask(
                            label=label,
                            participant=None,
                            raw=block,
                            port_ids=(),
                            participant_names=participant_names,
                            reachable={},
                            fec_table=fec_table,
                            stage2_blocks=stage2_blocks,
                            mode=mode,
                            encoder=encoder_view,
                            compose=not multitable,
                        ),
                        None,
                    )
                )

        tasks = [task for _, task, _ in plan if task is not None]
        if tasks:
            # Non-blocking dispatch: the batch grinds on the backend
            # while the caller interleaves other work at the yield
            # point (the inline trampoline just waits immediately).
            future = self.backend.submit(tasks, run_shard)
            while not future.poll():
                yield ("wait", future)
            shard_results = future.result()
        else:
            shard_results = []
        results_by_label: Dict[Tuple, ShardResult] = {
            result.label: result for result in shard_results
        }
        shard_seconds = compiler._now() - phase
        self._m_stage.observe(shard_seconds, stage="shards")

        # Shard failures: quarantine policy shards and restart the pass
        # (the FEC partition must be rebuilt without the culprit); shared
        # shard failures have no single author and propagate.
        failed_policies = False
        for result in shard_results:
            if result.error is None:
                continue
            error_type, message = result.error
            if result.participant is not None:
                self._quarantine(result.participant, error_type, message, attempts)
                failed_policies = True
            else:
                raise RuntimeError(
                    f"shared segment {result.label} failed to compile: "
                    f"{error_type}: {message}"
                )
        if failed_policies:
            return None

        # Stage 5: assemble segments in configuration order.
        phase = compiler._now()
        labeled_blocks: List[Tuple[Any, Classifier]] = []
        segments: List[Tuple[Any, Classifier]] = []
        shards_compiled = 0
        for label, task, entry in plan:
            if task is not None:
                result = results_by_label[label]
                entry = self._store_entry(
                    label, task, result, active, stage2_blocks, encoding_sig
                )
                shards_compiled += 1
                self._m_shards.inc(participant=label[1] if len(label) > 1 else label[0])
            labeled_blocks.append((label, entry.stage1_block))
            if len(entry.segment):
                segments.append((label, entry.segment))
        placements: Dict[Any, Tuple[int, Optional[int]]] = {}
        if multitable:
            # The uncomposed stage-1 segments live in table 0 and chain
            # into a single merged VMAC-matching table.  Chain-entry
            # blocks match ANY in composition (the composing rule
            # provides the context); merged into a shared table they
            # must be pinned to their own virtual location or they'd
            # swallow every table-1 miss.
            merged_stage2: List[Classifier] = []
            for target, block in stage2_blocks.items():
                if isinstance(target, ServiceChain):
                    block = isolate(block, [target])
                merged_stage2.append(block)
            vmac_segment = concat_disjoint(merged_stage2)
            for label, _ in segments:
                placements[label] = (0, 1)
            if len(vmac_segment):
                segments.append((("vmac",), vmac_segment))
                placements[("vmac",)] = (1, None)
        stage1 = concat_disjoint([block for _, block in labeled_blocks])
        final = concat_disjoint([segment for _, segment in segments])

        if controller.options.build_advertisements:
            if self._advert_cache is None or self.dirty.routes or fec_changed:
                self._advert_cache = compiler._advertised_next_hops(fec_table)
            advertised = self._advert_cache
        else:
            advertised = {}
        assemble_seconds = compiler._now() - phase
        self._m_stage.observe(assemble_seconds, stage="assemble")

        total = compiler._now() - started
        stats = CompilationStats(
            policy_compile_seconds=ast_seconds,
            vnh_compute_seconds=fec_seconds,
            transform_seconds=stage2_seconds,
            compose_seconds=shard_seconds + assemble_seconds,
            total_seconds=total,
            policy_groups=len(policy_groups),
            fec_groups=len(fec_table.affected_groups),
            rules=len(final),
        )
        compiler._record_stats(stats)
        self.bus.publish(
            CompileFinished(
                passes=attempts,
                shards_compiled=shards_compiled,
                shards_cached=len(plan) - shards_compiled,
            )
        )
        return CompilationResult(
            classifier=final,
            fec_table=fec_table,
            stage1=stage1,
            stage2_blocks=stage2_blocks,
            advertised_next_hops=advertised,
            stats=stats,
            segments=tuple(segments),
            placements=placements,
        )

    # -- stage helpers ------------------------------------------------------

    def _materialize_reachable(
        self, name: str, classifier: Classifier, participant_names: FrozenSet[str]
    ) -> Dict[str, FrozenSet[IPv4Prefix]]:
        """The reachability map a shard needs: target -> exported prefixes.

        Materialized (rather than closed over the route server) so it can
        cross a process boundary and be compared for cache validation.
        """
        loc_rib = self.controller.route_server.loc_rib(name)
        reachable: Dict[str, FrozenSet[IPv4Prefix]] = {}
        for rule in classifier.rules:
            for action in rule.actions:
                target = action.output_port
                if target in participant_names and target not in reachable:
                    reachable[target] = loc_rib.prefixes_via(target)
        return reachable

    def _reconcile_fec(
        self,
        policy_groups: List[FrozenSet[IPv4Prefix]],
        fingerprint,
        allocator: VirtualNextHopAllocator,
    ) -> Tuple[FECTable, bool]:
        """The Section 4.2 partition, reusing VNHs for surviving groups.

        Bucket enumeration replicates ``compute_fec_table`` exactly
        (same sort key, same order), so a fresh-cache compilation
        allocates the identical VNH sequence.  A group whose prefix set
        persists keeps its pair; vanished groups' pairs are queued for
        release at the next successful commit (never earlier: a rolled
        back commit must leave the old advertisements resolving).
        """
        signature_of: Dict[IPv4Prefix, List[int]] = {}
        for index, group in enumerate(policy_groups):
            for prefix in group:
                signature_of.setdefault(prefix, []).append(index)
        buckets: Dict[Tuple[FrozenSet[int], Hashable], set] = {}
        for prefix, indices in signature_of.items():
            key = (frozenset(indices), fingerprint(prefix))
            buckets.setdefault(key, set()).add(prefix)
        ordered = sorted(buckets.items(), key=lambda item: sorted(map(str, item[1])))

        encoder = self.controller.superset_encoder
        changed = False
        # encode() can trigger a full registry recomputation mid-pass
        # (superset id-space overflow), invalidating encodings reused
        # earlier in the same loop — rerun until the epoch is stable.
        # The second pass starts against an empty registry, so a bound
        # of a few attempts is structural, not a timeout.
        for _attempt in range(4):
            epoch_at_start = encoder.epoch if encoder is not None else 0
            groups: List[PrefixGroup] = []
            live_keys: Set[FrozenSet[IPv4Prefix]] = set()
            for group_id, ((_, bgp_fingerprint), prefixes) in enumerate(ordered):
                key = frozenset(prefixes)
                live_keys.add(key)
                vnh = self._vnh_by_key.get(key)
                if encoder is not None:
                    inputs = encoding_inputs(bgp_fingerprint)
                    meta = (inputs, encoder.epoch)
                    if vnh is not None and self._vnh_meta.get(key) != meta:
                        # The class's announcers/next-hop (or the whole
                        # encoding epoch) changed: the attribute bits in
                        # the old VMAC are stale.  Reallocate so routers
                        # re-ARP onto a correctly encoded address.
                        self._pending_release.append(self._vnh_by_key.pop(key))
                        vnh = None
                        changed = True
                    if vnh is None:
                        hardware = encoder.encode(*inputs)
                        vnh = allocator.allocate(hardware)
                        self._vnh_by_key[key] = vnh
                        self._vnh_meta[key] = (inputs, encoder.epoch)
                        changed = True
                elif vnh is None:
                    vnh = allocator.allocate()
                    self._vnh_by_key[key] = vnh
                    changed = True
                groups.append(PrefixGroup(group_id, key, vnh))
            if encoder is None or encoder.epoch == epoch_at_start:
                break
        for key in list(self._vnh_by_key):
            if key not in live_keys:
                self._pending_release.append(self._vnh_by_key.pop(key))
                self._vnh_meta.pop(key, None)
                changed = True
        return FECTable(groups), changed

    def _build_rib_views(
        self, reachable_maps, fec_table, ranked_routes
    ) -> Dict[str, ParticipantRIBView]:
        """Materialize each participant's scoped RIB slice in one sweep.

        Exports come straight from the already-materialized reachability
        maps; the announced slices are carved out of the ranked routes of
        the affected FEC groups, bucketed by announcer.  O(groups·routes)
        total — each ranked list is walked once, not once per participant.
        """
        announced_by: Dict[str, Dict[FrozenSet[IPv4Prefix], List[Route]]] = {}
        for group in fec_table.affected_groups:
            for route in ranked_routes(group):
                announced_by.setdefault(route.learned_from, {}).setdefault(
                    group.prefixes, []
                ).append(route)
        views: Dict[str, ParticipantRIBView] = {}
        for name in self.controller.config.participant_names():
            views[name] = ParticipantRIBView(
                participant=name,
                exports=reachable_maps.get(name, {}),
                announced={
                    key: tuple(routes)
                    for key, routes in announced_by.get(name, {}).items()
                },
            )
        return views

    def _build_shared_blocks(
        self,
        in_raw,
        fec_table,
        ranked_routes,
        chains,
        chain_hop_ports,
        views,
        mode,
        encoder_view,
    ):
        """Stage-2 blocks plus the shared stage-1 blocks (legacy Phase C).

        Delivery blocks are now compiled participant-locally
        (:func:`compile_delivery` against each participant's RIB view);
        only the cross-participant blocks — egress ports, chain entries,
        default forwarding — are built centrally.
        """
        config = self.controller.config
        stage2_blocks: Dict[Any, Classifier] = {}
        failures: Dict[str, Tuple[str, str]] = {}
        for participant in config.participants():
            try:
                stage2_blocks[participant.name] = compile_delivery(
                    participant,
                    views[participant.name],
                    in_raw.get(participant.name, _EMPTY),
                    config,
                    fec_table,
                    mode,
                    encoder_view,
                )
            except Exception as exc:  # noqa: BLE001 - isolate the participant
                failures[participant.name] = (type(exc).__name__, str(exc))
        for port in config.physical_ports():
            if port.port_id in chain_hop_ports:
                # Chain hops keep the frame's VMAC: no MAC rewrite, the
                # appliance taps promiscuously and the preserved tag is
                # what resumes default forwarding after the last hop.
                egress = Action(port=port.port_id)
            else:
                egress = Action(port=port.port_id, dstmac=port.hardware)
            stage2_blocks[port.port_id] = Classifier(
                [Rule(HeaderMatch(port=port.port_id), (egress,))]
            )
        for chain in chains:
            stage2_blocks[chain] = chain_entry_block(chain)
        if mode == "superset":
            default_block = default_forwarding_classifier_superset(
                config, fec_table, ranked_routes, encoder_view
            )
        else:
            default_block = default_forwarding_classifier(
                config, fec_table, ranked_routes
            )
        continuation = Classifier(chain_continuation_rules(chains))
        return stage2_blocks, default_block, continuation, failures

    def _policy_entry_valid(
        self, entry, policy_set, reachable, fec_table, stage2_blocks, encoding_sig
    ) -> bool:
        if entry.policy_set != policy_set:
            return False
        if entry.reachable != reachable:
            return False
        if entry.encoding_sig != encoding_sig:
            return False
        if entry.group_sig != self._group_signature(fec_table, reachable):
            return False
        return self._target_blocks_valid(entry, stage2_blocks)

    def _shared_entry_valid(self, entry, raw_block, stage2_blocks) -> bool:
        if entry.raw != raw_block:
            return False
        return self._target_blocks_valid(entry, stage2_blocks)

    @staticmethod
    def _target_blocks_valid(entry: _ShardEntry, stage2_blocks) -> bool:
        for target, block in entry.target_blocks.items():
            if stage2_blocks.get(target) != block:
                return False
        return True

    @staticmethod
    def _group_signature(fec_table: FECTable, reachable) -> FrozenSet:
        """The FEC groups a shard's reachable universe can touch.

        (prefix set, VNH) pairs — group ids deliberately excluded: ids
        renumber as unrelated buckets come and go, but relative order
        among surviving groups is stable (both follow the same
        sorted-prefix-string key), so equal signatures imply the
        recompiled block would be byte-identical.
        """
        universe: Set[IPv4Prefix] = set()
        for eligible in reachable.values():
            universe.update(eligible)
        return frozenset(
            (group.prefixes, group.vnh)
            for group in fec_table.groups_covering(universe)
        )

    def _store_entry(
        self, label, task: ShardTask, result: ShardResult, active, stage2_blocks,
        encoding_sig=None,
    ) -> _ShardEntry:
        if task.compose:
            targets = segment_targets(result.stage1_block)
            target_blocks = {target: stage2_blocks.get(target) for target in targets}
        else:
            # Multi-table: the segment never embeds stage-2 blocks, so
            # their churn can't stale it — the merged VMAC table is
            # rebuilt from fresh blocks every pass regardless.
            target_blocks = {}
        entry = _ShardEntry(
            policy_set=active.get(task.participant) if task.participant else None,
            reachable=dict(task.reachable) if task.participant else None,
            group_sig=(
                self._group_signature(task.fec_table, task.reachable)
                if task.participant
                else None
            ),
            raw=task.raw,
            target_blocks=target_blocks,
            stage1_block=result.stage1_block,
            segment=result.segment,
            encoding_sig=encoding_sig if task.participant else None,
        )
        self._shard_cache[label] = entry
        return entry

    def _quarantine(
        self,
        name: str,
        error_type: str,
        message: str,
        attempts: int,
        state: str = "compile",
        offenses: int = 1,
    ) -> None:
        controller = self.controller
        controller._quarantined[name] = QuarantineRecord(
            participant=name,
            error=message,
            error_type=error_type,
            compile_attempts=attempts,
            state=state,
            offenses=offenses,
        )
        controller._m_quarantines.inc()
        # The culprit's cached shard is stale by definition — for a
        # guard quarantine it compiled fine but *misforwarded*, so the
        # cache entry is exactly what must not be replayed.
        self._shard_cache.pop(policy_label(name), None)

    # -- legacy path (ablation options) -------------------------------------

    def _compile_legacy(self) -> CompilationResult:
        """The pre-pipeline compile loop, kept for ablation configurations."""
        controller = self.controller
        active = {
            name: policy_set
            for name, policy_set in controller._policies.items()
            if name not in controller._quarantined
        }
        attempts = 0
        while True:
            attempts += 1
            try:
                return controller.compiler.compile(
                    active,
                    originated=controller.routing.originated(),
                    allocator=controller.allocator,
                    chains=controller._chains.values(),
                )
            except Exception as exc:  # noqa: BLE001 - diagnose and retry
                culprit = self._diagnose_culprit(active)
                if culprit is None:
                    raise
                self._quarantine(culprit, type(exc).__name__, str(exc), attempts)
                active.pop(culprit)

    def _diagnose_culprit(self, policies: Mapping[str, SDXPolicySet]) -> Optional[str]:
        """Which single participant's policy set fails to compile alone?"""
        controller = self.controller
        probe_allocator = VirtualNextHopAllocator(controller.config.vnh_pool)
        for name in sorted(policies):
            try:
                controller.compiler.compile(
                    {name: policies[name]}, allocator=probe_allocator
                )
            except Exception:  # noqa: BLE001 - the probe's verdict is the point
                return name
        return None
