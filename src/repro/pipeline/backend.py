"""Pluggable execution backends for compile-shard fan-out.

Per-participant shards are independent (the disjoint-concat invariant:
stage-1 blocks are port-isolated, so no shard reads another's output),
which makes shard compilation embarrassingly parallel.  The pipeline
submits a list of :class:`~repro.pipeline.shards.ShardTask`s to an
:class:`ExecutionBackend` and gets results back *in submission order*,
whatever order the shards actually finished in — determinism is the
backend contract, not an accident of scheduling.

Backends:

* :class:`SerialBackend` — the default; runs shards inline.
* :class:`ParallelBackend` — a ``multiprocessing`` fork pool.  Tasks
  are handed to workers by index through a module-level global set
  just before the fork, so the (large, classifier-heavy) task inputs
  are inherited copy-on-write and only the results are pickled.  The
  ``fork`` start method is required for byte-identical output: rule
  actions are frozensets, whose iteration order depends on the
  process's hash seed, and forked children inherit the parent's seed
  where spawned ones would not.  Platforms without ``fork`` fall back
  to serial execution.
* :class:`ShuffledSerialBackend` — a test backend that *executes* the
  shards in a seeded random order while still returning results in
  submission order, to prove completion order cannot leak into the
  flow table.

Selection: ``REPRO_BACKEND=serial|parallel`` (optionally
``REPRO_BACKEND_PROCS=<n>`` to pin the pool size) or pass a backend
instance to ``SDXController(backend=...)``.

Besides the blocking ``run()`` barrier, every backend offers a
``submit()``/``poll()`` future API so the event-loop runtime can keep
verifying the previous commit (or just breathing) while a forked pool
grinds through shards; ``run()`` is now sugar for
``submit(...).wait()``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from typing import Callable, List, Optional, Sequence

__all__ = [
    "BackendFuture",
    "ExecutionBackend",
    "ParallelBackend",
    "SerialBackend",
    "ShuffledSerialBackend",
    "backend_from_env",
]

#: (tasks, fn) stashed by ParallelBackend immediately before forking its
#: pool so workers inherit the inputs instead of unpickling them.
_FORK_WORK = None


def _invoke_inherited(index: int):
    tasks, fn = _FORK_WORK
    return fn(tasks[index])


class BackendFuture:
    """Handle for an in-flight ``submit()`` batch.

    ``poll()`` is non-blocking; ``wait()`` blocks and returns the
    results in submission order (memoized — safe to call repeatedly).
    A worker exception is re-raised from ``wait()``.
    """

    def poll(self) -> bool:
        raise NotImplementedError

    def wait(self) -> List:
        raise NotImplementedError

    def result(self) -> List:
        """Alias for :meth:`wait` (explicit at call sites that polled)."""
        return self.wait()


class _EagerFuture(BackendFuture):
    """Already-completed results (serial backends, tiny batches)."""

    def __init__(self, results: List) -> None:
        self._results = results

    def poll(self) -> bool:
        return True

    def wait(self) -> List:
        return self._results


class _PoolFuture(BackendFuture):
    """A ``map_async`` in flight on a forked pool."""

    def __init__(self, pool, async_result) -> None:
        self._pool = pool
        self._async = async_result
        self._results: Optional[List] = None
        self._error: Optional[BaseException] = None

    def poll(self) -> bool:
        if self._pool is None:
            return True
        return self._async.ready()

    def wait(self) -> List:
        if self._pool is not None:
            try:
                self._results = self._async.get()
            except BaseException as exc:  # noqa: BLE001 - propagate on re-wait too
                self._error = exc
                self._pool.terminate()
            finally:
                pool, self._pool = self._pool, None
                pool.join()
        if self._error is not None:
            raise self._error
        return self._results


class ExecutionBackend:
    """Runs shard tasks; results come back in submission order."""

    name = "abstract"

    def run(self, tasks: Sequence, fn: Callable) -> List:
        return self.submit(tasks, fn).wait()

    def submit(self, tasks: Sequence, fn: Callable) -> BackendFuture:
        """Start the batch; default implementation completes eagerly."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every shard inline, in submission order (the default)."""

    name = "serial"

    def submit(self, tasks: Sequence, fn: Callable) -> BackendFuture:
        return _EagerFuture([fn(task) for task in tasks])


class ShuffledSerialBackend(ExecutionBackend):
    """Execute in a seeded random order; return in submission order.

    Exists for the determinism tests: if any pipeline stage accidentally
    depended on shard *completion* order, this backend would expose it.
    """

    name = "shuffled"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def submit(self, tasks: Sequence, fn: Callable) -> BackendFuture:
        order = list(range(len(tasks)))
        random.Random(self.seed).shuffle(order)
        results: List = [None] * len(tasks)
        for index in order:
            results[index] = fn(tasks[index])
        return _EagerFuture(results)

    def __repr__(self) -> str:
        return f"ShuffledSerialBackend(seed={self.seed})"


class ParallelBackend(ExecutionBackend):
    """Fan shards out over a forked ``multiprocessing`` pool.

    A fresh pool is created per ``run`` call: shard batches are rare
    (one per compilation) and large, so pool reuse buys nothing, while
    a fresh fork guarantees workers see the current task inputs without
    any pickling of classifiers, FEC tables, or stage-2 blocks.
    """

    name = "parallel"

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = processes

    def _pool_size(self, tasks: Sequence) -> int:
        if self.processes is not None:
            return max(1, min(self.processes, len(tasks)))
        return max(1, min(os.cpu_count() or 1, len(tasks)))

    def submit(self, tasks: Sequence, fn: Callable) -> BackendFuture:
        global _FORK_WORK
        if len(tasks) <= 1:
            return _EagerFuture([fn(task) for task in tasks])
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return _EagerFuture([fn(task) for task in tasks])
        processes = self._pool_size(tasks)
        if processes <= 1:
            return _EagerFuture([fn(task) for task in tasks])
        # Workers fork at Pool construction and inherit _FORK_WORK
        # copy-on-write; it can be cleared as soon as the fork happened.
        _FORK_WORK = (list(tasks), fn)
        try:
            pool = context.Pool(processes=processes)
        finally:
            _FORK_WORK = None
        async_result = pool.map_async(_invoke_inherited, range(len(tasks)))
        pool.close()
        return _PoolFuture(pool, async_result)

    def __repr__(self) -> str:
        return f"ParallelBackend(processes={self.processes})"


def backend_from_env(env: Optional[dict] = None) -> ExecutionBackend:
    """The backend named by ``REPRO_BACKEND`` (default: serial)."""
    env = os.environ if env is None else env
    choice = str(env.get("REPRO_BACKEND", "serial")).strip().lower()
    if choice in ("parallel", "pool", "multiprocessing"):
        procs = env.get("REPRO_BACKEND_PROCS")
        return ParallelBackend(processes=int(procs) if procs else None)
    return SerialBackend()
