"""The pipeline's boundary stages: BGP ingress and fabric commit.

``UpdateIngress`` is where BGP UPDATEs enter the control plane (through
the resilience guard when one is attached) and where bursts can be
coalesced: inside an ``ingress.batch()`` block, updates still apply to
the route server immediately (RIB ordering is preserved), but the
resulting best-path changes are collected and handed to the fast path
*once*, deduplicated by prefix, when the batch closes.  A burst of N
updates touching one prefix then costs one fast-path pass instead of N.

``FabricCommitter`` is the last stage: the two-phase, rolled-back-on-
failure installation of a compilation into the switch, relocated from
the old monolithic controller.  Commit success is also the pipeline's
checkpoint — only then are dirty flags cleared and superseded VNHs
released, so a failed commit leaves the next compilation knowing it
still has work to do (and the old advertisements still resolving).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.bgp.messages import BGPUpdate
from repro.bgp.route_server import BestPathChange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler import CompilationResult
    from repro.pipeline.pipeline import CompilationPipeline

__all__ = ["BASE_COOKIE", "BASE_PRIORITY", "FabricCommitter", "UpdateIngress"]

#: Cookie tagging the base (fully optimized) rule block in the switch.
BASE_COOKIE = "sdx-base"
#: Priority floor of the base block.
BASE_PRIORITY = 1000


class UpdateIngress:
    """Feeds BGP updates into the route server, batching bursts."""

    def __init__(self, pipeline: "CompilationPipeline") -> None:
        self.pipeline = pipeline
        self._batch_depth = 0
        self._collected: List[BestPathChange] = []
        telemetry = pipeline.controller.telemetry
        self._m_updates = telemetry.counter(
            "sdx_ingress_updates_total", "BGP updates accepted by the ingress stage"
        )
        self._m_batched = telemetry.histogram(
            "sdx_ingress_batch_changes",
            "Best-path changes coalesced per ingress batch",
        )

    @property
    def batching(self) -> bool:
        return self._batch_depth > 0

    def submit(self, update: BGPUpdate) -> List[BestPathChange]:
        """One update through the guard (if any) into the route server.

        The subscriber hook on the route server routes the resulting
        best-path changes back through :meth:`collect` while a batch is
        open, or straight to the fast path otherwise.
        """
        controller = self.pipeline.controller
        self._m_updates.inc()
        if controller.resilience is not None:
            return controller.resilience.process_update(update)
        return controller.route_server.process_update(update)

    def collect(self, changes: List[BestPathChange]) -> None:
        """Hold a batch's best-path changes for coalesced dispatch."""
        self._collected.extend(changes)

    @contextmanager
    def batch(self):
        """Coalesce this block's best-path changes into one fast-path pass."""
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                collected, self._collected = self._collected, []
                merged = self._dedupe(collected)
                self._m_batched.observe(len(merged))
                if merged:
                    self.pipeline.controller._dispatch_fast_path(merged)

    @staticmethod
    def _dedupe(changes: List[BestPathChange]) -> List[BestPathChange]:
        """Last change per prefix wins (the fast path recomputes from the
        route server anyway, so intermediate flaps are pure waste)."""
        last: Dict = {}
        for change in changes:
            last[change.prefix] = change
        return list(last.values())


class FabricCommitter:
    """Two-phase commit of a compilation into the switch."""

    def __init__(self, pipeline: "CompilationPipeline") -> None:
        self.pipeline = pipeline

    def install(self, result: "CompilationResult") -> None:
        """Install ``result`` transactionally; rollback restores everything.

        Any exception inside the transaction — including a registered
        commit hook raising — restores the flow table, the fast-path
        state, and the advertisement map to their pre-commit values,
        then propagates.  On success the pipeline checkpoint runs:
        dirty flags clear and superseded VNHs are released.
        """
        controller = self.pipeline.controller
        table = controller.switch.table
        saved_fast_path = controller.fast_path.snapshot()
        saved_cookies = list(controller._base_cookies)
        saved_advertised = dict(controller._advertised)
        transaction = table.transaction()
        try:
            for cookie in controller._base_cookies:
                table.remove_by_cookie(cookie)
            controller._base_cookies.clear()
            controller.fast_path.flush()
            # Install per-provenance segments so the flow table can account
            # traffic per participant policy.  Segment order fixes relative
            # priority: earlier segments sit above later ones.
            segments = result.segments or ((("all",), result.classifier),)
            remaining = sum(len(block) for _, block in segments)
            for label, block in segments:
                cookie = (BASE_COOKIE, *label)
                base = BASE_PRIORITY + remaining - len(block)
                table.install_classifier(block, base_priority=base, cookie=cookie)
                controller._base_cookies.append(cookie)
                remaining -= len(block)
            controller._advertised = dict(result.advertised_next_hops)
            for hook in list(controller._commit_hooks):
                hook(result)
            transaction.commit()
        except BaseException:
            transaction.rollback()
            controller.fast_path.restore(saved_fast_path)
            controller._base_cookies = saved_cookies
            controller._advertised = saved_advertised
            raise
        controller._last_result = result
        self.pipeline.on_committed(result)
        controller._push_routes_to_all()
