"""The pipeline's boundary stages: BGP ingress and fabric commit.

``UpdateIngress`` is where BGP UPDATEs enter the control plane (through
the resilience guard when one is attached) and where bursts can be
coalesced: inside an ``ingress.batch()`` block, updates still apply to
the route server immediately (RIB ordering is preserved), but the
resulting best-path changes are collected and handed to the fast path
*once*, deduplicated by prefix, when the batch closes.  A burst of N
updates touching one prefix then costs one fast-path pass instead of N.

``FabricCommitter`` is the last stage: the two-phase, rolled-back-on-
failure installation of a compilation into the switch.  Since the delta
reconciliation engine (``repro.dataplane.reconcile``) it no longer
wipes and reinstalls the base table: the target table is diffed against
the installed one and only the minimal add/remove/reprioritize patch is
applied, preserving packet/byte counters on every unchanged rule and
making an edit-1-of-N recompile O(changed segment) instead of O(table).
Commit success is also the pipeline's checkpoint — only then are dirty
flags cleared and superseded VNHs released, so a failed commit leaves
the next compilation knowing it still has work to do (and the old
advertisements still resolving).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.bgp.messages import BGPUpdate
from repro.bgp.route_server import BestPathChange
from repro.dataplane.reconcile import (
    BASE_COOKIE,
    BASE_PRIORITY,
    ChurnStats,
    CommitReport,
    diff,
    is_base_cookie,
    target_specs,
)
from repro.guard.commits import GuardViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler import CompilationResult
    from repro.pipeline.pipeline import CompilationPipeline

__all__ = ["BASE_COOKIE", "BASE_PRIORITY", "FabricCommitter", "UpdateIngress"]


class UpdateIngress:
    """Feeds BGP updates into the route server, batching bursts."""

    def __init__(self, pipeline: "CompilationPipeline") -> None:
        self.pipeline = pipeline
        self._batch_depth = 0
        self._collected: List[BestPathChange] = []
        telemetry = pipeline.controller.telemetry
        self._m_updates = telemetry.counter(
            "sdx_ingress_updates_total", "BGP updates accepted by the ingress stage"
        )
        self._m_batched = telemetry.histogram(
            "sdx_ingress_batch_changes",
            "Best-path changes coalesced per ingress batch",
        )

    @property
    def batching(self) -> bool:
        return self._batch_depth > 0

    def submit(self, update: BGPUpdate) -> List[BestPathChange]:
        """One update through the guard (if any) into the route server.

        The subscriber hook on the route server routes the resulting
        best-path changes back through :meth:`collect` while a batch is
        open, or straight to the fast path otherwise.
        """
        controller = self.pipeline.controller
        self._m_updates.inc()
        if controller.resilience is not None:
            return controller.resilience.process_update(update)
        return controller.route_server.process_update(update)

    def collect(self, changes: List[BestPathChange]) -> None:
        """Hold a batch's best-path changes for coalesced dispatch."""
        self._collected.extend(changes)

    @contextmanager
    def batch(self):
        """Coalesce this block's best-path changes into one fast-path pass."""
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                collected, self._collected = self._collected, []
                merged = self._dedupe(collected)
                self._m_batched.observe(len(merged))
                if merged:
                    self.pipeline.controller._dispatch_fast_path(merged)

    @staticmethod
    def _dedupe(changes: List[BestPathChange]) -> List[BestPathChange]:
        """Last change per prefix wins (the fast path recomputes from the
        route server anyway, so intermediate flaps are pure waste)."""
        last: Dict = {}
        for change in changes:
            last[change.prefix] = change
        return list(last.values())


class FabricCommitter:
    """Delta-reconciled, two-phase commit of a compilation into the switch."""

    def __init__(self, pipeline: "CompilationPipeline") -> None:
        self.pipeline = pipeline
        self._last_report: CommitReport | None = None
        #: a deferred guard check handed over by the last install
        #: (event-loop runtime only); popped by the verify task
        self._deferred_verification = None
        self._commits = 0
        self._total_added = 0
        self._total_removed = 0
        self._total_retained = 0
        self._total_reprioritized = 0
        telemetry = pipeline.controller.telemetry
        self._m_added = telemetry.counter(
            "sdx_fabric_rules_added_total",
            "Base-table rules installed by delta-reconciled commits",
        )
        self._m_removed = telemetry.counter(
            "sdx_fabric_rules_removed_total",
            "Base-table rules removed by delta-reconciled commits",
        )
        self._m_retained = telemetry.counter(
            "sdx_fabric_rules_retained_total",
            "Base-table rules left untouched (counters preserved) per commit",
        )
        self._m_reprioritized = telemetry.counter(
            "sdx_fabric_rules_reprioritized_total",
            "Base-table rules re-slotted in place (counters preserved)",
        )
        self._m_seconds = telemetry.histogram(
            "sdx_fabric_commit_seconds",
            "Fabric commit latency (reconcile + patch + hooks)",
        )

    @property
    def last_report(self) -> CommitReport | None:
        """The most recent commit's :class:`CommitReport` (None before one)."""
        return self._last_report

    def churn_stats(self) -> ChurnStats:
        """Cumulative reconciliation counters (``controller.ops.churn()``)."""
        return ChurnStats(
            commits=self._commits,
            added=self._total_added,
            removed=self._total_removed,
            retained=self._total_retained,
            reprioritized=self._total_reprioritized,
            last=self._last_report,
        )

    def install(
        self, result: "CompilationResult", defer_guard: bool = False
    ) -> CommitReport:
        """Reconcile ``result`` into the switch transactionally.

        The target table implied by ``result.segments`` is diffed
        against the installed base rules (identity: cookie + match +
        actions; priority handled as a reprioritize-in-place) and only
        the patch is applied — unchanged rules keep their packet/byte
        counters.  Any exception inside the transaction — including a
        registered commit hook raising — restores the flow table
        (membership, order, *and* priorities), the fast-path state, and
        the advertisement map to their pre-commit values, then
        propagates.  On success the pipeline checkpoint runs: dirty
        flags clear and superseded VNHs are released.  Returns the
        typed :class:`CommitReport`.

        With ``defer_guard=True`` (the event-loop runtime's pipelined
        path) the guard's probe pass is *not* run inside the
        transaction: the guard snapshots everything a rollback would
        need (:meth:`~repro.guard.commits.CommitGuard.begin_deferred`),
        the commit completes, and the check is left on
        :meth:`pop_deferred_verification` for the runtime's verify task
        to run — overlapped with the next compilation.  ``verified`` is
        then None on the returned report; the eventual
        :class:`~repro.guard.commits.GuardReport` lands on
        ``guard.last_report``.
        """
        controller = self.pipeline.controller
        table = controller.switch.table
        started = controller.telemetry.now()
        previous = controller._last_result
        saved_fast_path = controller.fast_path.snapshot()
        saved_cookies = list(controller._base_cookies)
        saved_advertised = dict(controller._advertised)
        # Per-provenance segments let the flow table account traffic per
        # participant policy.  Segment order fixes relative priority:
        # earlier segments sit above later ones.
        segments = result.segments or ((("all",), result.classifier),)
        placements = dict(getattr(result, "placements", None) or {})
        patch = diff(
            (rule for rule in table if is_base_cookie(rule.cookie)),
            target_specs(segments, placements=placements),
        )
        transaction = table.transaction()
        guard = controller.guard
        verified = None
        deferred = None
        try:
            controller.fast_path.flush()
            patch.apply(table)
            controller._base_cookies = [
                (BASE_COOKIE, *label) for label, _ in segments
            ]
            controller._advertised = dict(result.advertised_next_hops)
            for hook in list(controller._commit_hooks):
                hook(result)
            if guard is not None:
                if defer_guard:
                    deferred = guard.begin_deferred(
                        result, patch, transaction, previous
                    )
                else:
                    # Inside the still-open transaction: probes traverse
                    # the patched table; a mismatch raises GuardViolation
                    # and the failure path below restores everything.
                    verified = guard.check_commit(result, patch)
            transaction.commit()
        except BaseException as error:
            transaction.rollback()
            controller.fast_path.restore(saved_fast_path)
            controller._base_cookies = saved_cookies
            controller._advertised = saved_advertised
            if guard is not None and isinstance(error, GuardViolation):
                # Quarantine the culprit, prove the rollback, re-assert
                # the last-known-good cache, record the incident.  Always
                # raises (GuardedCommitError or RollbackFailure).
                guard.handle_violation(error, result, transaction)
            raise
        seconds = controller.telemetry.now() - started
        report = CommitReport(
            added=len(patch.adds),
            removed=len(patch.removes),
            retained=patch.retained,
            reprioritized=len(patch.moves),
            seconds=seconds,
            result=result,
            verified=verified,
        )
        self._record(report)
        # Snapshot the dirty flags *before* on_committed clears them:
        # they are part of what a deferred violation must reinstate.
        dirty_state = self.pipeline.dirty.snapshot()
        controller._last_result = result
        released = self.pipeline.on_committed(result)
        if deferred is not None:
            deferred.complete(
                previous=previous,
                base_cookies=saved_cookies,
                advertised=saved_advertised,
                fast_path=saved_fast_path,
                released=tuple(released),
                dirty=dirty_state,
            )
            self._deferred_verification = deferred
        controller._push_routes_to_all()
        return report

    def pop_deferred_verification(self):
        """Take (and clear) the pending deferred guard check, if any."""
        pending, self._deferred_verification = self._deferred_verification, None
        return pending

    def _record(self, report: CommitReport) -> None:
        self._last_report = report
        self._commits += 1
        self._total_added += report.added
        self._total_removed += report.removed
        self._total_retained += report.retained
        self._total_reprioritized += report.reprioritized
        if report.added:
            self._m_added.inc(report.added)
        if report.removed:
            self._m_removed.inc(report.removed)
        if report.retained:
            self._m_retained.inc(report.retained)
        if report.reprioritized:
            self._m_reprioritized.inc(report.reprioritized)
        self._m_seconds.observe(report.seconds)
