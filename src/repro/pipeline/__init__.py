"""The staged compilation pipeline behind :class:`SDXController`.

Stage graph (see ``docs/internals.md`` for the full contract)::

    BGP UPDATEs -> UpdateIngress -> RouteServer (RIB / best paths)
                                        |
    policy edits ----+------------------+--- EventBus / DirtyTracker
                     v                                 |
           [AST] -> [FEC + VNH reconcile] -> [stage-2 build]
                     |                                 |
                     v                                 v
           CompileShards ("policy", name | "chains" | "default")
                     |        (ExecutionBackend: serial / parallel)
                     v
              [assemble] -> FabricCommitter -> SDNSwitch flow table
"""

from repro.pipeline.backend import (
    ExecutionBackend,
    ParallelBackend,
    SerialBackend,
    ShuffledSerialBackend,
    backend_from_env,
)
from repro.pipeline.events import (
    ChainsChanged,
    CommitApplied,
    CompileFinished,
    DirtyTracker,
    EventBus,
    PolicyChanged,
    QuarantineLifted,
    RoutesChanged,
)
from repro.pipeline.pipeline import CompilationPipeline
from repro.pipeline.shards import ShardResult, ShardTask, run_shard
from repro.pipeline.stages import BASE_COOKIE, BASE_PRIORITY, FabricCommitter, UpdateIngress

__all__ = [
    "BASE_COOKIE",
    "BASE_PRIORITY",
    "ChainsChanged",
    "CommitApplied",
    "CompilationPipeline",
    "CompileFinished",
    "DirtyTracker",
    "EventBus",
    "ExecutionBackend",
    "FabricCommitter",
    "ParallelBackend",
    "PolicyChanged",
    "QuarantineLifted",
    "RoutesChanged",
    "SerialBackend",
    "ShardResult",
    "ShardTask",
    "ShuffledSerialBackend",
    "UpdateIngress",
    "backend_from_env",
    "run_shard",
]
