"""Pipeline event plumbing: a tiny synchronous bus plus dirty tracking.

The staged pipeline is wired together by :class:`EventBus` — a
deliberately small publish/subscribe hub.  The controller's mutators
publish typed events (policy installed, chain defined, routes moved,
quarantine lifted); the pipeline subscribes and folds them into a
:class:`DirtyTracker`, which is what lets
``run_background_recompilation()`` prove that *nothing* changed and
skip compilation entirely.

The bus contract (also documented in ``docs/internals.md``):

* events are plain immutable values (NamedTuples) — no behavior;
* delivery is synchronous and in subscription order, on the
  publisher's thread;
* a raising subscriber does **not** abort the fanout: every subscriber
  sees the event, then the collected errors re-raise — a single error
  unwrapped, several as :class:`SubscriberErrorGroup` (mirroring
  ``BGPSession``'s ``ListenerErrorGroup``), so a bad telemetry hook can
  never leave the ``DirtyTracker`` unnotified;
* subscribers must not publish from inside a handler (no re-entrant
  dispatch is attempted, recursion is the caller's bug);
* unknown event types are allowed — subscribers register per type, and
  an event nobody listens to is simply dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Tuple, Type

__all__ = [
    "ChainsChanged",
    "CommitApplied",
    "CompileFinished",
    "DirtyTracker",
    "EventBus",
    "PolicyChanged",
    "QuarantineLifted",
    "RoutesChanged",
    "SubscriberErrorGroup",
]


class PolicyChanged(NamedTuple):
    """A participant installed, replaced, or cleared its policy set."""

    participant: str


class QuarantineLifted(NamedTuple):
    """An operator re-admitted a quarantined participant."""

    participant: str


class ChainsChanged(NamedTuple):
    """A service chain was defined or removed."""

    name: str


class RoutesChanged(NamedTuple):
    """The route server's state moved (announce/withdraw/session sweep)."""

    changes: int


class CompileFinished(NamedTuple):
    """One pipeline compilation completed (before fabric commit)."""

    passes: int
    shards_compiled: int
    shards_cached: int


class CommitApplied(NamedTuple):
    """The FabricCommitter successfully installed a compilation."""

    rules: int


class SubscriberErrorGroup(RuntimeError):
    """Two or more subscribers raised during one ``publish`` fanout.

    The first failure is chained as ``__cause__``; all of them are kept
    on :attr:`errors` in subscription order.
    """

    def __init__(self, event, errors: List[BaseException]) -> None:
        summary = "; ".join(f"{type(e).__name__}: {e}" for e in errors)
        super().__init__(
            f"{len(errors)} subscribers failed for {type(event).__name__}: {summary}"
        )
        self.event = event
        self.errors = tuple(errors)


class EventBus:
    """Synchronous, type-keyed publish/subscribe."""

    def __init__(self) -> None:
        self._subscribers: Dict[Type, List[Callable]] = {}

    def subscribe(self, event_type: Type, handler: Callable) -> None:
        """Call ``handler(event)`` for every published ``event_type``."""
        self._subscribers.setdefault(event_type, []).append(handler)

    def publish(self, event) -> None:
        """Deliver ``event`` to every subscriber, then surface failures.

        Fanout always completes — a raising subscriber cannot starve the
        ones registered after it (the ``DirtyTracker`` must see every
        event or the no-op shortcut becomes unsound).  One failure
        re-raises unwrapped; several raise :class:`SubscriberErrorGroup`
        with the first as ``__cause__``.
        """
        errors: List[BaseException] = []
        for handler in self._subscribers.get(type(event), ()):
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - aggregated below
                errors.append(exc)
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise SubscriberErrorGroup(event, errors) from errors[0]


class DirtyTracker:
    """What changed since the last successful fabric commit.

    Per-participant policy dirtiness is tracked by name so telemetry
    can expose the pending-work set; route and chain dirtiness are
    single bits (their blast radius is global — the default-forwarding
    segment depends on every best path, the continuation on every
    chain).  The shard cache revalidates itself from signatures, so
    these flags only gate the background-recompilation no-op shortcut.
    """

    def __init__(self) -> None:
        self.participants: set = set()
        self.routes = False
        self.chains = False

    @property
    def any(self) -> bool:
        return bool(self.participants) or self.routes or self.chains

    def mark_policy(self, name: str) -> None:
        self.participants.add(name)

    def mark_routes(self) -> None:
        self.routes = True

    def mark_chains(self) -> None:
        self.chains = True

    def clear(self) -> None:
        self.participants.clear()
        self.routes = False
        self.chains = False

    def snapshot(self) -> Tuple[Tuple[str, ...], bool, bool]:
        return (tuple(sorted(self.participants)), self.routes, self.chains)

    def __repr__(self) -> str:
        return (
            f"DirtyTracker(participants={sorted(self.participants)}, "
            f"routes={self.routes}, chains={self.chains})"
        )
