"""The emulated exchange fabric: nodes, links, hosts, delivery loop.

:class:`Fabric` wires :class:`~repro.dataplane.switch.Node` objects
together and moves packets until they are consumed, mirroring what
Mininet provides the paper's prototype.  Per-link packet counters feed
the traffic time series of the deployment experiments (Figure 5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.dataplane.flowtable import FlowTable
from repro.dataplane.switch import Node
from repro.netutils.ip import IPv4Address
from repro.netutils.mac import MACAddress
from repro.policy.packet import Packet

__all__ = ["Endpoint", "Fabric", "FabricTransaction", "Host"]


class Endpoint(NamedTuple):
    """One side of a link: a node name and a port on that node."""

    node: str
    port: Any


class Host(Node):
    """An end host: sources and sinks traffic, records what it receives.

    By default a host keeps only packets addressed to its own IP
    (shared-LAN floods are ignored); set ``promiscuous`` to capture
    everything, e.g. for a middlebox tap.
    """

    def __init__(
        self,
        name: str,
        address: "IPv4Address | str",
        hardware: "MACAddress | str",
        port: Any = "eth0",
        promiscuous: bool = False,
    ) -> None:
        super().__init__(name)
        self.address = IPv4Address(address)
        self.hardware = MACAddress(hardware)
        self.port = port
        self.promiscuous = promiscuous
        self.received: List[Packet] = []

    def ports(self) -> FrozenSet[Any]:
        return frozenset((self.port,))

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Sink the frame if addressed to us (or promiscuous)."""
        if self.promiscuous or packet.get("dstip") == self.address:
            self.received.append(packet)
        return []

    def build_packet(self, **headers: Any) -> Packet:
        """A packet sourced by this host (src fields prefilled)."""
        defaults = {"srcip": self.address, "srcmac": self.hardware}
        defaults.update(headers)
        return Packet(**defaults)


class Fabric:
    """A static topology of nodes and point-to-point links."""

    MAX_HOPS = 64

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Endpoint, Endpoint] = {}
        self.link_packets: Dict[Tuple[Endpoint, Endpoint], int] = {}
        self.dropped_unlinked = 0
        self.hop_limit_drops = 0

    # -- topology -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; names are the fabric's addressing scheme."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    def link(self, a: "Endpoint | Tuple[str, Any]", b: "Endpoint | Tuple[str, Any]") -> None:
        """Create a bidirectional link between two (node, port) endpoints."""
        a = Endpoint(*a)
        b = Endpoint(*b)
        for endpoint in (a, b):
            if endpoint.node not in self._nodes:
                raise ValueError(f"unknown node {endpoint.node!r}")
            if endpoint.port not in self._nodes[endpoint.node].ports():
                raise ValueError(
                    f"node {endpoint.node!r} has no port {endpoint.port!r}"
                )
            if endpoint in self._links:
                raise ValueError(f"endpoint {endpoint} already linked")
        self._links[a] = b
        self._links[b] = a

    def peer(self, endpoint: "Endpoint | Tuple[str, Any]") -> Optional[Endpoint]:
        """The far end of the link at ``endpoint``, if any."""
        return self._links.get(Endpoint(*endpoint))

    # -- packet movement -------------------------------------------------------

    def send_from(self, node_name: str, out_port: Any, packet: Packet) -> int:
        """Transmit a packet out of a node's port and run it to completion.

        Returns the number of fabric hops traversed (0 when the port is
        unlinked).  Multicast outputs are followed breadth-first; the
        per-fabric hop limit guards against accidental loops.
        """
        pending: List[Tuple[Endpoint, Packet]] = [(Endpoint(node_name, out_port), packet)]
        hops = 0
        while pending:
            origin, current = pending.pop(0)
            destination = self._links.get(origin)
            if destination is None:
                self.dropped_unlinked += 1
                continue
            hops += 1
            if hops > self.MAX_HOPS:
                self.hop_limit_drops += 1
                break
            key = (origin, destination)
            self.link_packets[key] = self.link_packets.get(key, 0) + 1
            receiver = self._nodes[destination.node]
            for next_port, next_packet in receiver.receive(current, destination.port):
                pending.append((Endpoint(destination.node, next_port), next_packet))
        return hops

    def inject(self, node_name: str, in_port: Any, packet: Packet) -> int:
        """Deliver a packet *into* a node as if it arrived on ``in_port``."""
        hops = 0
        node = self._nodes[node_name]
        for out_port, out_packet in node.receive(packet, in_port):
            hops += self.send_from(node_name, out_port, out_packet)
        return hops

    def traffic_on(self, a: "Endpoint | Tuple[str, Any]", b: "Endpoint | Tuple[str, Any]") -> int:
        """Packets observed traversing the directed link a -> b."""
        return self.link_packets.get((Endpoint(*a), Endpoint(*b)), 0)

    def reset_counters(self) -> None:
        """Zero the per-link and drop counters (measurement epochs)."""
        self.link_packets.clear()
        self.dropped_unlinked = 0
        self.hop_limit_drops = 0

    # -- transactional table updates -------------------------------------------

    def _flow_tables(self) -> Dict[str, FlowTable]:
        """Every node exposing a :class:`FlowTable` (switches, not hosts)."""
        return {
            name: node.table
            for name, node in self._nodes.items()
            if isinstance(getattr(node, "table", None), FlowTable)
        }

    def transaction(self) -> "FabricTransaction":
        """Atomically update every switch table in the fabric.

        An exception inside the ``with`` block restores all tables to
        their pre-transaction state — no node is left running a
        half-written table while its neighbours run the new one.
        """
        return FabricTransaction(self)

    def table_hashes(self) -> Dict[str, str]:
        """Per-node content hash of each flow table (rollback verification)."""
        return {
            name: table.content_hash() for name, table in self._flow_tables().items()
        }

    def __repr__(self) -> str:
        return f"Fabric(nodes={len(self._nodes)}, links={len(self._links) // 2})"


class FabricTransaction:
    """A fabric-wide two-phase commit over every node's flow table."""

    def __init__(self, fabric: Fabric) -> None:
        self._checkpoints = {
            name: table.transaction() for name, table in fabric._flow_tables().items()
        }
        self._closed = False

    def commit(self) -> None:
        if self._closed:
            return
        for txn in self._checkpoints.values():
            txn.commit()
        self._closed = True

    def rollback(self) -> None:
        if self._closed:
            return
        for txn in self._checkpoints.values():
            txn.rollback()
        self._closed = True

    def __enter__(self) -> "FabricTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.rollback()
        else:
            self.commit()
