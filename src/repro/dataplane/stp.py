"""Spanning-tree computation for mixed conventional/SDN fabrics.

Section 3.2: "Participants who are physically present at the IXP but do
not want to implement SDX policies see the same layer-2 abstractions
that they would at any other IXP.  The SDX controller can run a
conventional spanning tree protocol to ensure seamless operation
between SDN-enabled participants and conventional participants."

This module computes an 802.1D-style spanning tree over a graph of
layer-2 switches (lowest-id root, shortest distance, lowest-id
tiebreak) and applies it to :class:`~repro.dataplane.switch.LearningSwitch`
instances by blocking the flooding ports that would close loops.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.dataplane.switch import LearningSwitch

__all__ = ["SpanningTree", "compute_spanning_tree"]

Link = Tuple[Tuple[str, str], Tuple[str, str]]


class SpanningTree:
    """The result: which (switch, port) endpoints forward vs block."""

    def __init__(
        self,
        root: str,
        forwarding: FrozenSet[Tuple[str, str]],
        blocked: FrozenSet[Tuple[str, str]],
    ) -> None:
        self.root = root
        self.forwarding = forwarding
        self.blocked = blocked

    def is_blocked(self, switch: str, port: str) -> bool:
        return (switch, port) in self.blocked

    def apply(self, switches: Mapping[str, LearningSwitch]) -> None:
        """Install the tree into learning switches (block loop ports)."""
        for name, switch in switches.items():
            for port in list(switch.ports()):
                switch.set_port_blocked(port, self.is_blocked(name, port))

    def __repr__(self) -> str:
        return (
            f"SpanningTree(root={self.root!r}, forwarding={len(self.forwarding)}, "
            f"blocked={len(self.blocked)})"
        )


def compute_spanning_tree(
    switches: Iterable[str], links: Iterable[Link]
) -> SpanningTree:
    """802.1D-flavoured spanning tree over named switches.

    The lexicographically smallest switch id is the root (standing in
    for the lowest bridge id); each other switch keeps the port on its
    shortest path to the root (ties broken by neighbor id, then port
    id); the *designated* end of every tree link forwards too.  All
    remaining inter-switch ports block.  Edge (non-inter-switch) ports
    are unknown to this computation and therefore never blocked.
    """
    names = sorted(set(switches))
    if not names:
        raise ValueError("no switches")
    link_list: List[Link] = []
    adjacency: Dict[str, List[Tuple[str, str, str]]] = {name: [] for name in names}
    for (switch_a, port_a), (switch_b, port_b) in links:
        for switch in (switch_a, switch_b):
            if switch not in adjacency:
                raise ValueError(f"link references unknown switch {switch!r}")
        link_list.append(((switch_a, port_a), (switch_b, port_b)))
        adjacency[switch_a].append((switch_b, port_a, port_b))
        adjacency[switch_b].append((switch_a, port_b, port_a))

    root = names[0]
    # BFS distances from the root with deterministic neighbor order.
    distance: Dict[str, int] = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier: List[str] = []
        for current in sorted(frontier):
            for neighbor, _, _ in sorted(adjacency[current]):
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier

    unreachable = [name for name in names if name not in distance]
    if unreachable:
        raise ValueError(f"switches unreachable from root: {unreachable}")

    # Each non-root switch picks one root port (shortest path, lowest
    # neighbor, lowest local port id).
    root_port: Dict[str, Tuple[str, str, str]] = {}
    for name in names:
        if name == root:
            continue
        candidates = [
            (distance[neighbor], neighbor, local_port, remote_port)
            for neighbor, local_port, remote_port in adjacency[name]
            if distance[neighbor] == distance[name] - 1
        ]
        _, neighbor, local_port, remote_port = min(candidates)
        root_port[name] = (neighbor, local_port, remote_port)

    forwarding: Set[Tuple[str, str]] = set()
    for name, (neighbor, local_port, remote_port) in root_port.items():
        forwarding.add((name, local_port))
        forwarding.add((neighbor, remote_port))  # the designated end

    blocked: Set[Tuple[str, str]] = set()
    for (switch_a, port_a), (switch_b, port_b) in link_list:
        for endpoint in ((switch_a, port_a), (switch_b, port_b)):
            if endpoint not in forwarding:
                blocked.add(endpoint)
    return SpanningTree(root, frozenset(forwarding), frozenset(blocked))
