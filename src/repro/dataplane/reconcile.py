"""Rule-level delta reconciliation for fabric commits.

The SDX paper's data-plane economy argument (FEC/VMAC grouping, the
two-stage incremental pipeline) is that switch state stays small and
*updates stay cheap*.  Wiping every base cookie and reinstalling the
full classifier on each commit — what the committer did before this
module — betrays that argument twice over: an edit to one participant's
policy rewrites the entire table, and every per-rule packet/byte
counter (the basis of per-policy accounting) resets with it.

This module diffs the *target* flow table a compilation implies against
the *installed* one and produces a minimal patch:

* **identity** — a rule is the same rule iff its (cookie, match,
  actions) triple is unchanged; priority is an *attribute* of an
  installed rule, not part of its identity.  Canonical forms mirror
  :meth:`~repro.dataplane.flowtable.FlowTable.content_hash` exactly, so
  "same identity + same priority" implies "same digest row".
* **diff** — rules present in both sides at the same priority are
  *retained* untouched (counters keep accumulating); identical rules
  whose priority shifted (a neighbouring segment grew or shrank, moving
  the priority tiling) are *reprioritized* in place, again preserving
  counters; everything else becomes an add or a remove.
* **patch application** — removes, then moves, then adds, inside the
  caller's :class:`~repro.dataplane.flowtable.FlowTableTransaction`.
  Because base-table priorities are globally unique (segments tile
  contiguous priority ranges), the patched table is byte-identical —
  same :meth:`content_hash` — to a full wipe-and-reinstall.

:class:`CommitReport` is the typed outcome the controller returns from
``compile()`` / ``run_background_recompilation()``: the add/remove/
retain/reprioritize counts plus the commit latency, delegating every
other attribute to the underlying
:class:`~repro.core.compiler.CompilationResult` so existing callers
keep reading ``.segments``, ``.fec_table``, ``.stats`` untouched.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.dataplane.flowtable import FlowRule, FlowTable
from repro.policy.classifier import Action, Classifier, HeaderMatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler import CompilationResult
    from repro.guard.commits import GuardReport

__all__ = [
    "BASE_COOKIE",
    "BASE_PRIORITY",
    "ChurnStats",
    "CommitReport",
    "RuleSpec",
    "TablePatch",
    "diff",
    "is_base_cookie",
    "target_specs",
]

#: Cookie tagging the base (fully optimized) rule block in the switch.
BASE_COOKIE = "sdx-base"
#: Priority floor of the base block.
BASE_PRIORITY = 1000

RuleIdentity = Tuple[str, str, Tuple[str, ...], int, str]

#: Segment placement in the multi-table layout: label -> (table, goto).
Placement = Tuple[int, Optional[int]]


def is_base_cookie(cookie: Any) -> bool:
    """True for cookies the reconciler owns (base-table segments)."""
    return isinstance(cookie, tuple) and bool(cookie) and cookie[0] == BASE_COOKIE


class RuleSpec(NamedTuple):
    """One desired flow entry: what a compilation wants installed."""

    priority: int
    match: HeaderMatch
    actions: FrozenSet[Action]
    cookie: Any
    table: int = 0
    goto: Optional[int] = None

    @property
    def identity(self) -> RuleIdentity:
        """Priority-independent identity; see :meth:`FlowRule.identity`."""
        return (
            repr(self.cookie),
            repr(self.match),
            tuple(sorted(repr(action) for action in self.actions)),
            self.table,
            repr(self.goto),
        )


def target_specs(
    segments: Sequence[Tuple[Any, Classifier]],
    base_priority: int = BASE_PRIORITY,
    base_cookie: Any = BASE_COOKIE,
    placements: Optional[Dict[Any, Placement]] = None,
) -> List[RuleSpec]:
    """The full desired base table for ``segments``, priorities tiled.

    Replicates the committer's historical layout exactly: segment order
    fixes relative priority (earlier segments sit above later ones),
    and within a segment the classifier's rule order becomes strictly
    descending priorities.  The resulting priorities are globally
    unique — they tile ``base_priority + 1 .. base_priority + total`` —
    which is what makes patched-table ordering deterministic even when
    ``placements`` scatters segments across table stages (per-stage
    lookup only sees its own slice of the tiling, still in order).
    """
    placements = placements or {}
    specs: List[RuleSpec] = []
    remaining = sum(len(block) for _, block in segments)
    for label, block in segments:
        cookie = (base_cookie, *label)
        table, goto = placements.get(label, (0, None))
        top = base_priority + remaining
        for offset, rule in enumerate(block.rules):
            specs.append(
                RuleSpec(
                    top - offset,
                    rule.match,
                    frozenset(rule.actions),
                    cookie,
                    table,
                    goto,
                )
            )
        remaining -= len(block)
    return specs


class TablePatch:
    """A minimal edit script turning the installed table into the target.

    ``retained`` counts rules left completely untouched; ``moves`` are
    (installed rule, new priority) pairs — same identity, shifted
    priority — whose counters survive; ``adds``/``removes`` are genuine
    churn.  Apply inside a transaction: :meth:`apply` mutates the table
    in place and the transaction's checkpoint (membership *and*
    priorities) makes a mid-patch failure fully reversible.
    """

    __slots__ = ("adds", "removes", "moves", "retained")

    def __init__(
        self,
        adds: List[RuleSpec],
        removes: List[FlowRule],
        moves: List[Tuple[FlowRule, int]],
        retained: int,
    ) -> None:
        self.adds = adds
        self.removes = removes
        self.moves = moves
        self.retained = retained

    @property
    def churn(self) -> int:
        """Rule install/remove operations this patch will perform."""
        return len(self.adds) + len(self.removes)

    @property
    def is_noop(self) -> bool:
        return not (self.adds or self.removes or self.moves)

    def apply(self, table: FlowTable) -> None:
        """Mutate ``table`` into the target (call inside a transaction)."""
        for rule in self.removes:
            table.remove(rule)
        for rule, priority in self.moves:
            table.reprioritize(rule, priority)
        for spec in self.adds:
            table.install(
                FlowRule(
                    spec.priority,
                    spec.match,
                    spec.actions,
                    cookie=spec.cookie,
                    table=spec.table,
                    goto=spec.goto,
                )
            )

    def __repr__(self) -> str:
        return (
            f"TablePatch(adds={len(self.adds)}, removes={len(self.removes)}, "
            f"moves={len(self.moves)}, retained={self.retained})"
        )


def diff(current: Iterable[FlowRule], target: Iterable[RuleSpec]) -> TablePatch:
    """Compute the minimal patch from installed rules to desired specs.

    Matching is per identity bucket: exact-priority pairs retain first,
    then leftover installed rules pair with leftover specs in priority
    order (reprioritize), and only the unmatched tails become removes
    and adds.  Deterministic for any input order.
    """
    current_by_id: Dict[RuleIdentity, List[FlowRule]] = {}
    for rule in current:
        current_by_id.setdefault(rule.identity, []).append(rule)
    target_by_id: Dict[RuleIdentity, List[RuleSpec]] = {}
    for spec in target:
        target_by_id.setdefault(spec.identity, []).append(spec)

    adds: List[RuleSpec] = []
    removes: List[FlowRule] = []
    moves: List[Tuple[FlowRule, int]] = []
    retained = 0
    for identity, specs in target_by_id.items():
        installed = current_by_id.pop(identity, [])
        by_priority: Dict[int, List[FlowRule]] = {}
        for rule in installed:
            by_priority.setdefault(rule.priority, []).append(rule)
        unmatched_specs: List[RuleSpec] = []
        for spec in specs:
            bucket = by_priority.get(spec.priority)
            if bucket:
                bucket.pop()
                retained += 1
            else:
                unmatched_specs.append(spec)
        unmatched_rules = [rule for bucket in by_priority.values() for rule in bucket]
        unmatched_rules.sort(key=lambda rule: rule.priority)
        unmatched_specs.sort(key=lambda spec: spec.priority)
        paired = min(len(unmatched_rules), len(unmatched_specs))
        for rule, spec in zip(unmatched_rules[:paired], unmatched_specs[:paired]):
            moves.append((rule, spec.priority))
        adds.extend(unmatched_specs[paired:])
        removes.extend(unmatched_rules[paired:])
    for leftover in current_by_id.values():
        removes.extend(leftover)
    return TablePatch(adds, removes, moves, retained)


class CommitReport:
    """Typed outcome of one fabric commit.

    Carries the reconciliation counts (``added`` / ``removed`` /
    ``retained`` / ``reprioritized``) and the commit latency in
    ``seconds``, with the :class:`CompilationResult` behind the commit
    in ``result``.  Unknown attributes delegate to ``result``, so code
    written against ``compile()``'s historical return type
    (``report.segments``, ``report.fec_table``, ``report.stats``, …)
    keeps working unchanged.
    """

    __slots__ = (
        "added",
        "removed",
        "retained",
        "reprioritized",
        "seconds",
        "result",
        "verified",
    )

    def __init__(
        self,
        added: int,
        removed: int,
        retained: int,
        reprioritized: int,
        seconds: float,
        result: "CompilationResult",
        verified: Optional["GuardReport"] = None,
    ) -> None:
        self.added = added
        self.removed = removed
        self.retained = retained
        self.reprioritized = reprioritized
        self.seconds = seconds
        self.result = result
        #: the commit guard's sampled-check report (None when no guard
        #: is attached or the check was skipped as a no-op re-commit)
        self.verified = verified

    @property
    def churn(self) -> int:
        """Rules actually installed or removed by this commit."""
        return self.added + self.removed

    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes not in __slots__: delegate to the
        # compilation result for backward compatibility.
        return getattr(object.__getattribute__(self, "result"), name)

    def __repr__(self) -> str:
        return (
            f"CommitReport(added={self.added}, removed={self.removed}, "
            f"retained={self.retained}, reprioritized={self.reprioritized}, "
            f"seconds={self.seconds:.6f})"
        )


class ChurnStats(NamedTuple):
    """Cumulative reconciliation counters since controller start.

    Exposed via ``controller.ops.churn()`` so benchmarks and operator
    tooling read structured numbers instead of parsing
    ``metrics_text()``.
    """

    commits: int
    added: int
    removed: int
    retained: int
    reprioritized: int
    last: Optional[CommitReport]
