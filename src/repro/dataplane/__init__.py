"""Data-plane substrate: flow tables, switches, routers, ARP, fabric.

This package replaces the Open vSwitch + Mininet layer of the paper's
prototype with a deterministic in-process emulation that exposes the
same observable behaviour: priority flow-table matching, MAC learning,
ARP resolution, and the BGP border-router forwarding pipeline the SDX
VMAC scheme piggybacks on.
"""

from repro.dataplane.appliance import MiddleboxAppliance
from repro.dataplane.arp import ARPService, ARPTable
from repro.dataplane.fabric import Endpoint, Fabric, Host
from repro.dataplane.flowtable import FlowRule, FlowTable
from repro.dataplane.reconcile import (
    ChurnStats,
    CommitReport,
    RuleSpec,
    TablePatch,
    diff,
    target_specs,
)
from repro.dataplane.router import BorderRouter, RouterInterface
from repro.dataplane.stp import SpanningTree, compute_spanning_tree
from repro.dataplane.switch import LearningSwitch, Node, SDNSwitch

__all__ = [
    "ARPService",
    "ARPTable",
    "BorderRouter",
    "ChurnStats",
    "CommitReport",
    "Endpoint",
    "Fabric",
    "FlowRule",
    "FlowTable",
    "Host",
    "LearningSwitch",
    "MiddleboxAppliance",
    "Node",
    "RuleSpec",
    "RouterInterface",
    "SDNSwitch",
    "SpanningTree",
    "TablePatch",
    "compute_spanning_tree",
    "diff",
    "target_specs",
]
