"""In-fabric middlebox appliances.

For the service-chaining extension (the paper's Section 8: "policies
... to control how traffic flows through middleboxes ... thereby
enabling service chaining"), a middlebox is not a passive sink: it
receives a frame on its SDX port, applies its function, and re-emits
the (possibly transformed) frame on the same port so the fabric can
carry it to the next hop of the chain.

:class:`MiddleboxAppliance` models exactly that — a bump in the wire
with an optional packet transform and a capture log.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from repro.dataplane.switch import Node
from repro.policy.packet import Packet

__all__ = ["MiddleboxAppliance"]

Transform = Callable[[Packet], Optional[Packet]]


class MiddleboxAppliance(Node):
    """A middlebox plugged directly into an SDX port.

    ``transform`` maps each received packet to the packet to re-emit
    (default: unchanged); returning ``None`` drops it (firewall
    semantics).  Every received packet is recorded in :attr:`seen`.
    """

    def __init__(
        self,
        name: str,
        port: Any = "wire",
        transform: Optional[Transform] = None,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.transform = transform
        self.seen: List[Packet] = []
        self.dropped = 0

    def ports(self) -> FrozenSet[Any]:
        return frozenset((self.port,))

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Record, transform, and re-emit (or drop) one frame."""
        self.seen.append(packet)
        out = packet if self.transform is None else self.transform(packet)
        if out is None:
            self.dropped += 1
            return []
        return [(self.port, out)]

    def __repr__(self) -> str:
        return f"MiddleboxAppliance({self.name!r}, seen={len(self.seen)})"
