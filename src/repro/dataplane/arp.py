"""ARP resolution.

At the SDX the controller runs an ARP responder that answers queries
for *virtual next-hop* (VNH) addresses with the corresponding virtual
MAC (Section 4.2): that is how the FEC tag reaches the participants'
unmodified border routers.  This module models ARP at the resolution
level — an :class:`ARPService` chains resolvers (static host tables,
the SDX responder) and is queried by border routers when they install
FIB entries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netutils.ip import IPv4Address
from repro.netutils.mac import MACAddress

__all__ = ["ARPService", "ARPTable", "Resolver"]

Resolver = Callable[[IPv4Address], Optional[MACAddress]]


class ARPTable:
    """A static IP-to-MAC mapping (one LAN segment's ARP cache)."""

    def __init__(self) -> None:
        self._entries: Dict[IPv4Address, MACAddress] = {}

    def learn(self, address: "IPv4Address | str", hardware: "MACAddress | str") -> None:
        """Add or update a binding."""
        self._entries[IPv4Address(address)] = MACAddress(hardware)

    def forget(self, address: "IPv4Address | str") -> None:
        self._entries.pop(IPv4Address(address), None)

    def resolve(self, address: IPv4Address) -> Optional[MACAddress]:
        return self._entries.get(IPv4Address(address))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: "IPv4Address | str") -> bool:
        return IPv4Address(address) in self._entries

    def __repr__(self) -> str:
        return f"ARPTable(entries={len(self._entries)})"


class ARPService:
    """Chained ARP resolution over a shared layer-2 segment.

    Resolvers are tried in registration order; the SDX controller
    registers its VNH responder here, ahead of nothing in particular —
    VNH space is disjoint from physical interface addresses by
    construction, so ordering never matters in practice.
    """

    def __init__(self) -> None:
        self._static = ARPTable()
        self._resolvers: List[Resolver] = []
        self.queries = 0
        self.failures = 0

    @property
    def static_table(self) -> ARPTable:
        """The segment's static bindings (physical router interfaces)."""
        return self._static

    def register(self, resolver: Resolver) -> None:
        """Add a dynamic resolver (e.g. the SDX VNH responder)."""
        self._resolvers.append(resolver)

    def resolve(self, address: "IPv4Address | str") -> Optional[MACAddress]:
        """Resolve an IP to a MAC; ``None`` models an unanswered ARP request."""
        self.queries += 1
        address = IPv4Address(address)
        found = self._static.resolve(address)
        if found is None:
            for resolver in self._resolvers:
                found = resolver(address)
                if found is not None:
                    break
        if found is None:
            self.failures += 1
        return found

    def __repr__(self) -> str:
        return (
            f"ARPService(static={len(self._static)}, resolvers={len(self._resolvers)}, "
            f"queries={self.queries})"
        )
