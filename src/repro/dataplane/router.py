"""Participant border routers.

SDX works with *unmodified* BGP routers because it piggybacks on the
standard data path a router applies to every packet (Section 4.2):

1. longest-prefix match on the destination IP selects a route;
2. the route's BGP **next-hop IP** is resolved through ARP;
3. the packet's destination MAC is rewritten to the resolved MAC and
   the packet is emitted toward the IXP fabric.

:class:`BorderRouter` implements exactly that pipeline, so when the SDX
route server hands it a *virtual* next-hop and the SDX ARP responder
answers with a *virtual* MAC, the router tags packets with their
forwarding-equivalence class without knowing it — the first stage of
the paper's multi-stage FIB (Figure 2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.dataplane.arp import ARPService
from repro.dataplane.switch import Node
from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie
from repro.netutils.mac import MACAddress
from repro.policy.packet import Packet

__all__ = ["BorderRouter", "RouterInterface"]


class RouterInterface(NamedTuple):
    """One IXP-facing interface: local port name, addressing, fabric port."""

    port: Any  # the router's own port identifier
    address: IPv4Address  # interface IP on the peering LAN
    hardware: MACAddress  # physical MAC (what default BGP traffic targets)


class _FibEntry(NamedTuple):
    next_hop: IPv4Address
    out_port: Any


class BorderRouter(Node):
    """An edge router of one SDX participant.

    Ports fall into two classes:

    * *IXP interfaces* (``RouterInterface``) — face the exchange fabric;
    * *internal ports* — face the participant's own network (hosts).

    Routes arrive from the SDX route server as (prefix, next-hop IP)
    pairs; packets from internal ports are forwarded by LPM with
    next-hop MAC rewriting, and packets from the fabric are delivered
    internally or counted as carried upstream.
    """

    def __init__(
        self,
        name: str,
        asn: int,
        interfaces: List[RouterInterface],
        arp: ARPService,
        internal_port: Any = "lan0",
    ) -> None:
        super().__init__(name)
        if not interfaces:
            raise ValueError("a border router needs at least one IXP interface")
        self.asn = asn
        self.arp = arp
        self.internal_port = internal_port
        self._interfaces: Dict[Any, RouterInterface] = {
            interface.port: interface for interface in interfaces
        }
        for interface in interfaces:
            arp.static_table.learn(interface.address, interface.hardware)
        self._rib: Dict[IPv4Prefix, IPv4Address] = {}
        self._fib = PrefixTrie()
        self._local_prefixes: Set[IPv4Prefix] = set()
        self.delivered: List[Tuple[Any, Packet]] = []
        self.carried_upstream: List[Packet] = []
        self.unroutable = 0
        self.arp_unresolved = 0

    # -- addressing --------------------------------------------------------

    @property
    def interfaces(self) -> Tuple[RouterInterface, ...]:
        return tuple(self._interfaces.values())

    @property
    def primary_interface(self) -> RouterInterface:
        """The interface used to emit traffic toward the fabric."""
        return next(iter(self._interfaces.values()))

    def interface(self, port: Any) -> RouterInterface:
        return self._interfaces[port]

    def ports(self) -> FrozenSet[Any]:
        return frozenset(self._interfaces) | {self.internal_port}

    # -- control plane -------------------------------------------------------

    def originate(self, prefix: "IPv4Prefix | str") -> None:
        """Mark a prefix as locally originated (delivered internally)."""
        self._local_prefixes.add(IPv4Prefix(prefix))

    def local_prefixes(self) -> FrozenSet[IPv4Prefix]:
        return frozenset(self._local_prefixes)

    def install_route(self, prefix: "IPv4Prefix | str", next_hop: "IPv4Address | str") -> None:
        """Install/replace the route for ``prefix`` (BGP RIB -> FIB)."""
        prefix = IPv4Prefix(prefix)
        next_hop = IPv4Address(next_hop)
        self._rib[prefix] = next_hop
        self._fib[prefix] = _FibEntry(next_hop, self.primary_interface.port)

    def withdraw_route(self, prefix: "IPv4Prefix | str") -> None:
        """Remove the route for ``prefix`` if present."""
        prefix = IPv4Prefix(prefix)
        if self._rib.pop(prefix, None) is not None:
            del self._fib[prefix]

    def route_for(self, destination: "IPv4Address | str") -> Optional[Tuple[IPv4Prefix, IPv4Address]]:
        """LPM lookup: (matched prefix, next-hop IP), or ``None``."""
        found = self._fib.longest_match(destination)
        if found is None:
            return None
        matched, entry = found
        return matched, entry.next_hop  # type: ignore[union-attr]

    def rib_snapshot(self) -> Dict[IPv4Prefix, IPv4Address]:
        return dict(self._rib)

    # -- data plane ------------------------------------------------------------

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Dispatch by direction: fabric-facing vs internal ports."""
        if in_port in self._interfaces:
            return self._from_fabric(packet, in_port)
        return self._from_internal(packet)

    def _from_fabric(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        destination = packet.get("dstip")
        if destination is not None and any(
            destination in local for local in self._local_prefixes
        ):
            self.delivered.append((in_port, packet))
            return [(self.internal_port, packet)]
        # Transit traffic: carried into the participant's backbone.  The
        # SDX invariant (Section 4.1) guarantees such traffic matches a
        # route this router announced, so it never hairpins to the fabric.
        self.carried_upstream.append(packet)
        return []

    def _from_internal(self, packet: Packet) -> List[Tuple[Any, Packet]]:
        destination = packet.get("dstip")
        if destination is None:
            self.unroutable += 1
            return []
        if any(destination in local for local in self._local_prefixes):
            self.delivered.append((self.internal_port, packet))
            return []
        found = self._fib.longest_match(destination)
        if found is None:
            self.unroutable += 1
            return []
        _, entry = found
        next_hop_mac = self.arp.resolve(entry.next_hop)  # type: ignore[union-attr]
        if next_hop_mac is None:
            self.arp_unresolved += 1
            return []
        interface = self._interfaces[entry.out_port]  # type: ignore[union-attr]
        tagged = packet.modify(srcmac=interface.hardware, dstmac=next_hop_mac)
        return [(entry.out_port, tagged)]  # type: ignore[union-attr]
