"""SDN switch and MAC-learning switch models.

:class:`SDNSwitch` is the SDX fabric element: a flow table plus named
ports.  :class:`LearningSwitch` models a conventional IXP's layer-2
switch (flood-and-learn), used as the baseline the paper's default
forwarding replaces and as the behaviour non-SDX participants see.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dataplane.flowtable import FlowTable
from repro.netutils.mac import MACAddress
from repro.policy.packet import Packet

__all__ = ["LearningSwitch", "Node", "SDNSwitch"]


class Node:
    """Anything attachable to the fabric: switches, routers, hosts."""

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Handle a packet arriving on ``in_port``.

        Returns (out_port, packet) pairs to transmit; an empty list
        means the packet was consumed or dropped.
        """
        raise NotImplementedError

    def ports(self) -> FrozenSet[Any]:
        """The node's port identifiers."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SDNSwitch(Node):
    """An OpenFlow-style switch driven entirely by its flow table.

    The SDX controller compiles the global policy into this switch's
    table.  Port identifiers are opaque (the SDX uses strings such as
    ``"A1"``); the special ``port`` header carries the packet location,
    so the table's actions move packets by rewriting it.
    """

    def __init__(self, name: str, ports: Optional[List[Any]] = None) -> None:
        super().__init__(name)
        self.table = FlowTable()
        self._ports: Set[Any] = set(ports or [])
        self.received = 0
        self.dropped = 0

    def add_port(self, port: Any) -> None:
        self._ports.add(port)

    def ports(self) -> FrozenSet[Any]:
        return frozenset(self._ports)

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Run one frame through the flow table; emit on matched ports."""
        self.received += 1
        located = packet.modify(port=in_port, switch=self.name)
        outputs = self.table.process(located)
        transmissions: List[Tuple[Any, Packet]] = []
        for out in outputs:
            out_port = out.get("port")
            if out_port is None or out_port not in self._ports:
                continue
            transmissions.append((out_port, out.modify(switch=None)))
        if not transmissions:
            self.dropped += 1
        return transmissions


class LearningSwitch(Node):
    """A conventional flood-and-learn Ethernet switch.

    Models today's IXP fabric: forwards on destination MAC only, which
    is precisely the behaviour Section 4.2 notes keeps classic IXP rule
    tables small — and that SDX's VMAC scheme deliberately preserves for
    default traffic.
    """

    def __init__(self, name: str, ports: Optional[List[Any]] = None) -> None:
        super().__init__(name)
        self._ports: Set[Any] = set(ports or [])
        self._blocked: Set[Any] = set()
        self._mac_table: Dict[MACAddress, Any] = {}
        self.floods = 0

    def add_port(self, port: Any) -> None:
        self._ports.add(port)

    def ports(self) -> FrozenSet[Any]:
        return frozenset(self._ports)

    def set_port_blocked(self, port: Any, blocked: bool = True) -> None:
        """Spanning-tree control: blocked ports neither learn nor forward."""
        if blocked:
            self._blocked.add(port)
        else:
            self._blocked.discard(port)

    def blocked_ports(self) -> FrozenSet[Any]:
        return frozenset(self._blocked)

    @property
    def mac_table(self) -> Dict[MACAddress, Any]:
        return dict(self._mac_table)

    def receive(self, packet: Packet, in_port: Any) -> List[Tuple[Any, Packet]]:
        """Learn the source, forward by destination MAC, else flood."""
        if in_port in self._blocked:
            return []
        source = packet.get("srcmac")
        if source is not None:
            self._mac_table[source] = in_port
        destination = packet.get("dstmac")
        out_port = self._mac_table.get(destination) if destination is not None else None
        if out_port is not None and out_port != in_port:
            if out_port in self._blocked:
                return []
            return [(out_port, packet)]
        if out_port == in_port:
            return []
        self.floods += 1
        return [
            (port, packet)
            for port in sorted(self._ports, key=repr)
            if port != in_port and port not in self._blocked
        ]
