"""OpenFlow-style flow tables.

The SDX controller's output — a prioritized :class:`~repro.policy.classifier.Classifier`
— is installed into a :class:`FlowTable` as :class:`FlowRule` entries.
The table implements the matching semantics of an OpenFlow switch
(highest priority wins, ties broken by installation order) and keeps
per-rule packet counters, which the deployment experiments (Figure 5)
read to produce their traffic time series.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.packet import Packet

__all__ = [
    "FlowRule",
    "FlowTable",
    "FlowTableTransaction",
    "dataplane_mode_from_env",
]

DATAPLANE_MODES = ("single", "multitable")


def dataplane_mode_from_env() -> str:
    """``REPRO_DATAPLANE``: ``single`` (default) or ``multitable``.

    Single-table installs fully composed rules into table 0; multitable
    keeps stage-1 outbound-policy rules in table 0 with a ``goto`` into
    the merged stage-2 (delivery/VMAC) rules in table 1.
    """
    mode = os.environ.get("REPRO_DATAPLANE", "single").strip().lower() or "single"
    if mode not in DATAPLANE_MODES:
        raise ValueError(
            f"REPRO_DATAPLANE={mode!r}: expected one of {', '.join(DATAPLANE_MODES)}"
        )
    return mode

_rule_ids = itertools.count(1)


class FlowRule:
    """One installed flow entry: priority + match + actions + counters.

    ``table`` places the entry in one stage of a multi-table layout
    (table 0 is the default, and the only one single-table layouts use);
    ``goto`` chains a matched packet — after this rule's actions are
    applied — into a later table, the OpenFlow ``goto_table``
    instruction.  Gotos must point strictly forward, which is what makes
    chained lookups loop-free by construction.
    """

    __slots__ = (
        "priority",
        "match",
        "actions",
        "cookie",
        "table",
        "goto",
        "rule_id",
        "packets",
        "bytes",
    )

    def __init__(
        self,
        priority: int,
        match: HeaderMatch,
        actions: Iterable[Action] = (),
        cookie: Any = None,
        table: int = 0,
        goto: Optional[int] = None,
    ) -> None:
        self.priority = int(priority)
        self.match = match
        self.actions: FrozenSet[Action] = frozenset(actions)
        self.cookie = cookie
        self.table = int(table)
        if goto is not None and int(goto) <= self.table:
            raise ValueError(f"goto must point forward: table {table} -> {goto}")
        self.goto = int(goto) if goto is not None else None
        self.rule_id = next(_rule_ids)
        self.packets = 0
        self.bytes = 0

    @property
    def is_drop(self) -> bool:
        return not self.actions

    @property
    def identity(self) -> Tuple[str, str, Tuple[str, ...], int, str]:
        """Stable identity: (cookie, match, actions, table, goto).

        This is what the delta reconciler keys on: a rule whose identity
        survives a recompilation is the *same* rule (its counters must
        survive), even when the priority tiling around it shifted — but
        priority is excluded: it is an attribute, not identity.  The
        canonical forms match :meth:`FlowTable.content_hash` row fields,
        so identity-equal rules at equal priorities hash identically.
        """
        return (
            repr(self.cookie),
            repr(self.match),
            tuple(sorted(repr(action) for action in self.actions)),
            self.table,
            repr(self.goto),
        )

    def count(self, packet_bytes: int = 0) -> None:
        """Record one packet hit against this rule."""
        self.packets += 1
        self.bytes += packet_bytes

    def __repr__(self) -> str:
        verdict = "drop" if self.is_drop else ", ".join(sorted(repr(a) for a in self.actions))
        stage = f"t{self.table}:" if self.table else ""
        chain = f" goto({self.goto})" if self.goto is not None else ""
        return f"FlowRule({stage}prio={self.priority}, {self.match!r} -> {verdict}{chain})"


class FlowTable:
    """A priority-ordered flow table with OpenFlow matching semantics."""

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []
        self.misses = 0
        # Lazy per-ingress-port candidate lists (the always-on commit
        # guard makes lookup a hot path); any mutation clears them.
        self._port_candidates: Dict[Any, List[FlowRule]] = {}
        self._m_installs = self._m_removes = None
        self._m_commits = self._m_rollbacks = self._m_rules_gauge = None

    def attach_telemetry(self, registry) -> None:
        """Report install/remove churn and commit outcomes to ``registry``."""
        self._m_installs = registry.counter(
            "sdx_flowtable_installs_total", "Flow rules installed"
        )
        self._m_removes = registry.counter(
            "sdx_flowtable_removes_total", "Flow rules removed"
        )
        self._m_commits = registry.counter(
            "sdx_flowtable_commits_total", "Flow-table transactions committed"
        )
        self._m_rollbacks = registry.counter(
            "sdx_flowtable_rollbacks_total", "Flow-table transactions rolled back"
        )
        self._m_rules_gauge = registry.gauge(
            "sdx_flowtable_rules", "Flow rules currently installed"
        )
        self._m_rules_gauge.set(len(self._rules))

    def _count_churn(self, installed: int = 0, removed: int = 0) -> None:
        if self._m_installs is None:
            return
        if installed:
            self._m_installs.inc(installed)
        if removed:
            self._m_removes.inc(removed)
        self._m_rules_gauge.set(len(self._rules))

    # -- rule management --------------------------------------------------

    def install(self, rule: FlowRule) -> FlowRule:
        """Insert a rule, keeping the table sorted by descending priority.

        Among equal priorities, earlier-installed rules match first,
        mirroring hardware behaviour.
        """
        index = len(self._rules)
        for position, existing in enumerate(self._rules):
            if existing.priority < rule.priority:
                index = position
                break
        self._rules.insert(index, rule)
        self._port_candidates.clear()
        self._count_churn(installed=1)
        return rule

    def install_classifier(
        self,
        classifier: Classifier,
        base_priority: int = 0,
        cookie: Any = None,
        table: int = 0,
        goto: Optional[int] = None,
    ) -> List[FlowRule]:
        """Install a compiled classifier as a block of flow rules.

        The classifier's rule order becomes strictly descending
        priorities starting at ``base_priority + len(classifier)``, so
        the block preserves first-match semantics and sits above any
        rules with priority <= ``base_priority``.  ``table``/``goto``
        place the whole block in one stage of a multi-table layout.
        """
        installed: List[FlowRule] = []
        top = base_priority + len(classifier.rules)
        for offset, rule in enumerate(classifier.rules):
            installed.append(
                self.install(
                    FlowRule(
                        top - offset,
                        rule.match,
                        rule.actions,
                        cookie=cookie,
                        table=table,
                        goto=goto,
                    )
                )
            )
        return installed

    def remove(self, rule: FlowRule) -> None:
        self._rules.remove(rule)
        self._port_candidates.clear()
        self._count_churn(removed=1)

    def reprioritize(self, rule: FlowRule, priority: int) -> FlowRule:
        """Move an installed rule to a new priority, counters intact.

        The rule object is re-slotted (removed from its position and
        re-inserted under the normal ordering) rather than replaced, so
        its packet/byte counters keep accumulating — the whole point of
        a reprioritize over a remove+install.  Not counted as flow-table
        churn: no rule was installed or removed.
        """
        self._rules.remove(rule)
        rule.priority = int(priority)
        index = len(self._rules)
        for position, existing in enumerate(self._rules):
            if existing.priority < rule.priority:
                index = position
                break
        self._rules.insert(index, rule)
        self._port_candidates.clear()
        return rule

    def remove_by_cookie(self, cookie: Any) -> int:
        """Remove every rule tagged with ``cookie``; returns the count."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.cookie != cookie]
        removed = before - len(self._rules)
        if removed:
            self._port_candidates.clear()
            self._count_churn(removed=removed)
        return removed

    def rules_for_cookie(self, cookie: Any) -> Tuple[FlowRule, ...]:
        """Every installed rule tagged with ``cookie``, priority order.

        The verification oracle uses this to audit one provenance
        segment (a participant's policy block, a fast-path override)
        without scanning the whole table at each call site.
        """
        return tuple(rule for rule in self._rules if rule.cookie == cookie)

    def clear(self) -> None:
        removed = len(self._rules)
        self._rules.clear()
        self._port_candidates.clear()
        if removed:
            self._count_churn(removed=removed)

    # -- transactions --------------------------------------------------------

    def checkpoint(self) -> Tuple[FlowRule, ...]:
        """An immutable snapshot of the current rule list.

        Rule objects are shared, not copied, so counters keep ticking;
        what :meth:`restore` brings back is the table's *membership and
        order*, which is exactly what a half-applied update corrupts.
        """
        return tuple(self._rules)

    def restore(self, checkpoint: Tuple[FlowRule, ...]) -> None:
        """Reset the table to a previously taken :meth:`checkpoint`."""
        self._rules = list(checkpoint)
        self._port_candidates.clear()
        if self._m_rules_gauge is not None:
            self._m_rules_gauge.set(len(self._rules))

    def transaction(self) -> "FlowTableTransaction":
        """Start a two-phase update; see :class:`FlowTableTransaction`."""
        return FlowTableTransaction(self)

    def content_hash(self) -> str:
        """Deterministic digest of (priority, match, actions, cookie) rows.

        Counters are deliberately excluded: two tables that forward
        identically hash identically, which is what the transactional
        rollback tests compare.
        """
        digest = hashlib.sha256()
        for rule in self._rules:
            row = (
                rule.priority,
                repr(rule.match),
                tuple(sorted(repr(action) for action in rule.actions)),
                repr(rule.cookie),
                rule.table,
                repr(rule.goto),
            )
            digest.update(repr(row).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- matching ----------------------------------------------------------

    def lookup(self, packet: Packet, table: int = 0) -> Optional[FlowRule]:
        """The matching rule a switch would select in one table stage."""
        for rule in self._candidates(table, packet.get("port")):
            if rule.match.matches(packet):
                return rule
        return None

    def _candidates(self, table: int, port: Any) -> List[FlowRule]:
        """Rules in ``table`` that could match a packet on ``port``, in order.

        ``port`` is an exact-match field, so the table partitions by it:
        a rule either names this port or leaves port unconstrained, and
        filtering preserves the priority order, making a scan over the
        partition equivalent to a scan over the full table.  A packet
        without a located port (``None``) can never satisfy a
        port-constrained rule, but every unconstrained rule is kept —
        those are exactly the ones that can match, and such packets are
        rare (pre-location tracing only).
        """
        key = (table, port)
        cached = self._port_candidates.get(key)
        if cached is None:
            if port is None:
                cached = [rule for rule in self._rules if rule.table == table]
            else:
                cached = [
                    rule
                    for rule in self._rules
                    if rule.table == table
                    and (
                        (constraint := rule.match.constraint("port")) is None
                        or constraint == port
                    )
                ]
            self._port_candidates[key] = cached
        return cached

    def _apply_chained(
        self, rule: FlowRule, packet: Packet, count: bool, packet_bytes: int
    ) -> FrozenSet[Packet]:
        """Apply one matched rule, following ``goto`` chains to the end.

        Each action's rewritten packet either egresses (no goto) or is
        re-matched in the goto table; a miss in a later table drops that
        copy, as an OpenFlow table-miss does.  Gotos point strictly
        forward (enforced at construction), so chains terminate.
        """
        if rule.goto is None:
            return frozenset(action.apply(packet) for action in rule.actions)
        outputs = []
        for action in rule.actions:
            staged = action.apply(packet)
            nxt = self.lookup(staged, rule.goto)
            if nxt is None:
                continue
            if count:
                nxt.count(packet_bytes)
            outputs.extend(self._apply_chained(nxt, staged, count, packet_bytes))
        return frozenset(outputs)

    def resolve(self, packet: Packet) -> Optional[Tuple[FlowRule, FrozenSet[Packet]]]:
        """Chained, counter-free resolution from table 0 to egress.

        Returns the first-stage rule the packet matched (the provenance
        anchor: its cookie names the policy segment that claimed the
        packet) together with the final output packets after every goto
        hop; ``None`` on a first-table miss.
        """
        rule = self.lookup(packet)
        if rule is None:
            return None
        return rule, self._apply_chained(rule, packet, count=False, packet_bytes=0)

    def process(self, packet: Packet, packet_bytes: int = 0) -> FrozenSet[Packet]:
        """Match, count, and apply actions; no match or drop returns ∅."""
        rule = self.lookup(packet)
        if rule is None:
            self.misses += 1
            return frozenset()
        rule.count(packet_bytes)
        return self._apply_chained(rule, packet, count=True, packet_bytes=packet_bytes)

    # -- introspection ------------------------------------------------------

    def rules(self) -> Tuple[FlowRule, ...]:
        return tuple(self._rules)

    def table_ids(self) -> Tuple[int, ...]:
        """The distinct table stages currently holding rules, ascending."""
        return tuple(sorted({rule.table for rule in self._rules}))

    def rules_in(self, table: int) -> Tuple[FlowRule, ...]:
        """Every rule in one table stage, priority order."""
        return tuple(rule for rule in self._rules if rule.table == table)

    def counters_by_cookie(self) -> Dict[Any, Tuple[int, int]]:
        """Aggregate (packets, bytes) per cookie."""
        totals: Dict[Any, Tuple[int, int]] = {}
        for rule in self._rules:
            packets, size = totals.get(rule.cookie, (0, 0))
            totals[rule.cookie] = (packets + rule.packets, size + rule.bytes)
        return totals

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FlowRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        return f"FlowTable(rules={len(self._rules)}, misses={self.misses})"


class FlowTableTransaction:
    """Two-phase apply for a :class:`FlowTable`.

    Mutations between construction and :meth:`commit` happen in place
    (switches keep forwarding on the intermediate state, as hardware
    does), but :meth:`rollback` — or an exception inside the ``with``
    block — restores the entry snapshot, so an aborted update can never
    leave the table half-written::

        with table.transaction():
            table.remove_by_cookie(old)
            table.install_classifier(new_block, ...)
            # raising here restores the pre-transaction table
    """

    def __init__(self, table: FlowTable) -> None:
        self._table = table
        self._checkpoint = table.checkpoint()
        # Rule objects are shared with the live table and a delta patch
        # may reprioritize them in place, so membership alone is not a
        # sufficient snapshot: record each rule's priority too.
        self._priorities = tuple(rule.priority for rule in self._checkpoint)
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def checkpoint_digest(self) -> str:
        """Digest of the state :meth:`rollback` restores.

        Row-for-row identical to :meth:`FlowTable.content_hash` over the
        checkpoint membership at the *checkpointed* priorities, so after
        a rollback ``table.content_hash() == checkpoint_digest()`` iff
        the restore was byte-exact.  Computed lazily from the snapshot
        (no table hash on the commit hot path); the one state it cannot
        certify is a rule whose *fields* were mutated in place — which
        is why mutating installed rules' fields is forbidden everywhere
        (corrupt via remove + reinstall instead).
        """
        digest = hashlib.sha256()
        for rule, priority in zip(self._checkpoint, self._priorities):
            row = (
                priority,
                repr(rule.match),
                tuple(sorted(repr(action) for action in rule.actions)),
                repr(rule.cookie),
                rule.table,
                repr(rule.goto),
            )
            digest.update(repr(row).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    def commit(self) -> None:
        """Keep the mutations; the checkpoint is discarded."""
        if not self._closed and self._table._m_commits is not None:
            self._table._m_commits.inc()
        self._closed = True

    def rollback(self) -> None:
        """Restore the table to its state at transaction start.

        Reinstates membership, order, *and* the priorities captured at
        construction, so a rolled-back reprioritization leaves no trace
        (the post-rollback ``content_hash`` equals the pre-transaction
        one exactly).
        """
        if not self._closed:
            for rule, priority in zip(self._checkpoint, self._priorities):
                rule.priority = priority
            self._table.restore(self._checkpoint)
            self._closed = True
            if self._table._m_rollbacks is not None:
                self._table._m_rollbacks.inc()

    def __enter__(self) -> "FlowTableTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.rollback()
        else:
            self.commit()
