"""The differential checker: compiled data plane vs. reference interpreter.

One :meth:`DifferentialChecker.check` pass

1. samples probe packets the way border routers would emit them — a
   random sender port, an advertised destination prefix, the dstmac tag
   the sender's router would actually apply (VMAC or interface MAC, via
   the re-advertisement map and ARP);
2. pushes every probe through the *installed* tables
   (``switch.receive`` — base rules, fast-path overrides, and whatever
   the last delta reconciliation left behind, all at their real
   priorities);
3. diffs the observed ``(egress port, dstip)`` set against the
   :class:`~repro.verify.interpreter.ReferenceInterpreter`'s ground
   truth;
4. shrinks any disagreement to a **one-packet counterexample**: header
   fields are dropped one at a time while the mismatch persists, so the
   reported packet carries only what is needed to reproduce the bug;
5. optionally runs the structural invariant sweep
   (:mod:`repro.verify.invariants`) over the same installed state.

Every pass reports into the controller's telemetry registry:
``sdx_verify_probes_total{result}``, ``sdx_verify_runs_total{outcome}``,
``sdx_verify_violations_total{invariant}``, ``sdx_verify_seconds``.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.netutils.ip import IPv4Prefix
from repro.policy.packet import Packet
from repro.verify.interpreter import ReferenceInterpreter
from repro.verify.invariants import InvariantViolation, check_all_invariants

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["CheckReport", "DifferentialChecker", "Mismatch", "Probe"]

#: Application ports probes sample (the workload generator's mix + ssh).
_PROBE_PORTS = (80, 443, 8080, 1935, 8443, 22)
_PROBE_SRCIPS = ("50.0.0.1", "130.5.5.5", "200.9.9.9")
#: Header fields minimization may remove from a counterexample packet.
_OPTIONAL_FIELDS = ("srcip", "srcport", "dstport", "srcmac", "tos", "proto")


class Probe(NamedTuple):
    """One generated test packet, with the context that produced it."""

    sender: str
    in_port: str
    prefix: IPv4Prefix
    packet: Packet


class Mismatch(NamedTuple):
    """A probe the compiled fabric forwarded differently than it should."""

    probe: Probe
    expected: FrozenSet[Tuple[str, Any]]
    actual: FrozenSet[Tuple[str, Any]]
    provenance: str  # which installed rule decided (trace_packet verdict)

    def explain(self) -> str:
        """A reproduction-ready rendering of the counterexample."""

        def show(deliveries: FrozenSet[Tuple[str, Any]]) -> str:
            if not deliveries:
                return "drop"
            return ", ".join(
                f"({port}, dstip={dstip})" for port, dstip in sorted(
                    deliveries, key=lambda item: (str(item[0]), str(item[1]))
                )
            )

        probe = self.probe
        headers = {field: probe.packet.get(field) for field in probe.packet}
        return (
            f"counterexample: sender={probe.sender} in_port={probe.in_port} "
            f"prefix={probe.prefix}\n"
            f"  packet    : {headers}\n"
            f"  expected  : {show(self.expected)}\n"
            f"  compiled  : {show(self.actual)}  (via {self.provenance})"
        )


class CheckReport(NamedTuple):
    """Outcome of one differential + invariant pass."""

    probes: int  # probes sampled
    checked: int  # probes actually compared (admissible)
    skipped: int  # probes skipped (sender announces prefix / no route)
    mismatches: Tuple[Mismatch, ...]
    violations: Tuple[InvariantViolation, ...]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations

    def summary(self) -> str:
        lines = [
            f"verify: {self.checked}/{self.probes} probes checked "
            f"({self.skipped} skipped), {len(self.mismatches)} mismatches, "
            f"{len(self.violations)} invariant violations "
            f"in {self.seconds:.3f}s"
        ]
        for mismatch in self.mismatches:
            lines.append(mismatch.explain())
        for violation in self.violations:
            lines.append(str(violation))
        return "\n".join(lines)


class DifferentialChecker:
    """Drives probes through the installed tables and diffs the outcome."""

    def __init__(self, controller: "SDXController") -> None:
        self._controller = controller
        telemetry = controller.telemetry
        self._m_probes = telemetry.counter(
            "sdx_verify_probes_total",
            "Differential probes by result",
            labels=("result",),
        )
        self._m_runs = telemetry.counter(
            "sdx_verify_runs_total",
            "Differential check passes by outcome",
            labels=("outcome",),
        )
        self._m_violations = telemetry.counter(
            "sdx_verify_violations_total",
            "Invariant violations found by the verifier",
            labels=("invariant",),
        )
        self._m_seconds = telemetry.histogram(
            "sdx_verify_seconds", "Differential check pass latency"
        )

    # -- one full pass -------------------------------------------------------

    def check(
        self,
        probes: int = 64,
        seed: int = 0,
        invariants: bool = True,
        budget: Optional[int] = None,
        focus: Optional[Iterable[IPv4Prefix]] = None,
    ) -> CheckReport:
        """Sample ``probes`` packets, diff them, sweep the invariants.

        ``budget``, when given, overrides ``probes`` — it is the commit
        guard's hard cap on per-commit verification spend, and the
        number an incident's repro command replays with.  ``focus``
        concentrates roughly half the samples on the given prefixes
        (the guard passes the commit's changed-FEC delta); the other
        half still draws from the full advertised universe so damage
        outside the declared delta keeps a detection chance.
        """
        controller = self._controller
        if budget is not None:
            probes = budget
        started = controller.telemetry.now()
        interpreter = ReferenceInterpreter(controller)
        rng = random.Random(seed)
        ports = [port.port_id for port in controller.config.physical_ports()]
        prefixes = list(controller.route_server.sorted_prefixes())
        focused: List[IPv4Prefix] = (
            sorted(set(focus).intersection(prefixes)) if focus else []
        )

        checked = skipped = 0
        mismatches: List[Mismatch] = []
        if ports and prefixes:
            for _ in range(probes):
                probe = self._generate_probe(
                    rng, ports, prefixes, interpreter, focused
                )
                if probe is None:
                    skipped += 1
                    self._m_probes.inc(result="skipped")
                    continue
                mismatch = self.check_probe(probe, interpreter)
                checked += 1
                if mismatch is not None:
                    self._m_probes.inc(result="mismatch")
                    mismatches.append(self.minimize(mismatch, interpreter))
                else:
                    self._m_probes.inc(result="ok")

        violations: Tuple[InvariantViolation, ...] = ()
        if invariants:
            violations = tuple(check_all_invariants(controller))
            for violation in violations:
                self._m_violations.inc(invariant=violation.invariant)

        seconds = controller.telemetry.now() - started
        self._m_seconds.observe(seconds)
        report = CheckReport(
            probes=probes,
            checked=checked,
            skipped=skipped,
            mismatches=tuple(mismatches),
            violations=violations,
            seconds=seconds,
        )
        self._m_runs.inc(outcome="ok" if report.ok else "failed")
        return report

    # -- probe machinery -----------------------------------------------------

    def _generate_probe(
        self,
        rng: random.Random,
        ports: List[str],
        prefixes: List[IPv4Prefix],
        interpreter: ReferenceInterpreter,
        focus: List[IPv4Prefix] = (),
    ) -> Optional[Probe]:
        """One router-faithful probe, or None when the draw is inadmissible.

        With a non-empty ``focus``, each draw flips a (seeded) coin
        between the focus set and the full universe; without one the
        rng stream is identical to the pre-focus checker, so existing
        seeded repro commands keep reproducing the same probes.
        """
        in_port = rng.choice(ports)
        sender = self._controller.config.owner_of_port(in_port).name
        if focus and rng.random() < 0.5:
            prefix = rng.choice(focus)
        else:
            prefix = rng.choice(prefixes)
        if not interpreter.can_probe(sender, prefix):
            return None
        tag = interpreter.tag(sender, prefix)
        packet = Packet(
            dstip=prefix.host(rng.randrange(1, 255)),
            dstmac=tag,
            dstport=rng.choice(_PROBE_PORTS),
            srcport=rng.choice((1024, 30000, 55000)),
            srcip=rng.choice(_PROBE_SRCIPS),
        )
        return Probe(sender, in_port, prefix, packet)

    def check_probe(
        self, probe: Probe, interpreter: Optional[ReferenceInterpreter] = None
    ) -> Optional[Mismatch]:
        """Diff one probe; ``None`` when compiled and reference agree."""
        if interpreter is None:
            interpreter = ReferenceInterpreter(self._controller)
        expected = interpreter.expected_deliveries(
            probe.sender, probe.prefix, probe.packet
        )
        actual = self.compiled_deliveries(probe)
        if actual == expected:
            return None
        trace = self._controller.trace_packet(probe.packet, probe.in_port)
        return Mismatch(probe, expected, actual, trace.provenance)

    def compiled_deliveries(self, probe: Probe) -> FrozenSet[Tuple[str, Any]]:
        """Where the installed tables send the probe — without counting.

        Public because the federation verifier replays a probe hop by
        hop across several fabrics and needs each exchange's compiled
        verdict, not only the pass/fail of a local check.

        Mirrors ``SDNSwitch.receive`` (locate, match, apply actions,
        keep real egress ports) but goes through ``table.resolve`` so
        the probe leaves no trace: no packet/byte counters on any
        matched rule — across every table stage of a multi-table
        layout — no received/dropped tick on the switch.  Verification
        that perturbed per-policy traffic accounting would make the
        guard's always-on probing unbillable.
        """
        switch = self._controller.switch
        located = probe.packet.modify(port=probe.in_port, switch=switch.name)
        resolved = switch.table.resolve(located)
        if resolved is None:
            return frozenset()
        _, outputs = resolved
        deliveries = set()
        valid_ports = switch.ports()
        for out in outputs:
            out_port = out.get("port")
            if out_port is None or out_port not in valid_ports:
                continue
            deliveries.add((out_port, out.get("dstip")))
        return frozenset(deliveries)

    # -- counterexample minimization -----------------------------------------

    def minimize(
        self, mismatch: Mismatch, interpreter: Optional[ReferenceInterpreter] = None
    ) -> Mismatch:
        """Shrink a mismatching probe to a minimal one-packet repro.

        Greedily removes each optional header field (keeping dstip and
        the dstmac tag, without which the probe is not a valid frame)
        and keeps the removal whenever *some* disagreement persists —
        the surviving packet pins the smallest header set that still
        exhibits the bug.
        """
        if interpreter is None:
            interpreter = ReferenceInterpreter(self._controller)
        current = mismatch
        for field in _OPTIONAL_FIELDS:
            if current.probe.packet.get(field) is None:
                continue
            candidate_packet = current.probe.packet.modify(**{field: None})
            candidate = current.probe._replace(packet=candidate_packet)
            shrunk = self.check_probe(candidate, interpreter)
            if shrunk is not None:
                current = shrunk
        return current
