"""Federation-aware verification: loop freedom and consistency across IXPs.

A single exchange's invariant sweep (:mod:`repro.verify.invariants`)
cannot see the failure modes federation introduces, because each of
them is locally consistent:

* **policy ping-pong** — participant E at exchange A steers traffic to
  a transit whose route re-enters exchange B, where another policy
  steers it right back toward A.  Every intra-exchange BGP-consistency
  check passes (each ``fwd`` target really advertised the prefix), yet
  the packet orbits the federation forever;
* **stale or incoherent relays** — a relayed route whose backing route
  at the source exchange changed or vanished, whose AS path was not
  prepended exactly once, or whose next-hop does not land on the
  transit's destination-LAN port (so the re-entry hop cannot be
  tagged/delivered).

This module closes the gap with three layers:

1. :func:`check_federation_loop_freedom` builds the **inter-IXP
   forwarding graph** — nodes are (exchange, sender) states, edges mean
   "this sender's traffic for the prefix egresses at exchange k into a
   transit whose route was relayed from exchange k′, re-entering k′'s
   fabric" — and asserts it is a DAG per (prefix, flow) using the same
   cycle finder as the chain-hop checker.  A cycle is reported as a
   minimized counterexample naming every exchange involved;
2. :func:`check_cross_exchange_consistency` audits every live relay:
   backing-route liveness, exactly-once AS-path prepending, on-LAN
   next-hops, and VMAC coherence (the destination fabric can tag the
   relayed route for every member that sees it);
3. :class:`FederationChecker` adds the **end-to-end differential
   trace**: a probe is replayed hop by hop across fabrics, each hop
   diffed compiled-vs-reference with the per-exchange
   :class:`~repro.verify.checker.DifferentialChecker`, and re-tagged at
   every re-entry the way the next exchange's ARP would.

Violations reuse :class:`~repro.verify.invariants.InvariantViolation`
with the ``inter-ixp-loop`` / ``cross-exchange-bgp`` invariant names;
sweeps report into ``federation.telemetry`` as
``sdx_federation_verify_*``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.netutils.ip import IPv4Prefix
from repro.policy.packet import Packet
from repro.verify.checker import CheckReport, DifferentialChecker, Mismatch, Probe
from repro.verify.interpreter import ReferenceInterpreter
from repro.verify.invariants import InvariantViolation, find_cycle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController
    from repro.federation.exchange import FederatedExchange

__all__ = [
    "FederationChecker",
    "FederationHop",
    "FederationReport",
    "FederationTrace",
    "check_cross_exchange_consistency",
    "check_federation",
    "check_federation_loop_freedom",
]

#: (exchange name, sender participant name) — one state of the
#: inter-IXP forwarding walk
_State = Tuple[str, str]


def _flow_keys(federation: "FederatedExchange") -> Tuple[Optional[int], ...]:
    """The dstport values any member policy discriminates on, plus None.

    The inter-IXP graph depends on which policies claim a packet, and
    the policies in this algebra branch on header fields — so walking
    one representative packet per policy-relevant dstport (and one with
    no dstport at all) covers every distinct forwarding function the
    federation can apply to a prefix.
    """
    keys: Set[int] = set()
    for _, controller in federation.controllers():
        for name in controller.config.participant_names():
            for classifier in (
                controller.raw_outbound_classifier(name),
                controller.raw_inbound_classifier(name),
            ):
                if classifier is None:
                    continue
                for rule in classifier.rules:
                    value = rule.match.constraints.get("dstport")
                    if isinstance(value, int):
                        keys.add(value)
    return (None,) + tuple(sorted(keys))


def _probe_packet(
    prefix: IPv4Prefix, dstport: Optional[int], tag=None
) -> Packet:
    """A minimal walk packet: dstip always, dstport only when probing it."""
    headers: Dict[str, object] = {"dstip": prefix.host(1)}
    if dstport is not None:
        headers["dstport"] = dstport
    if tag is not None:
        headers["dstmac"] = tag
    return Packet(**headers)


def _reentry_edges(
    federation: "FederatedExchange",
    prefix: IPv4Prefix,
    dstport: Optional[int],
    interpreters: Dict[str, ReferenceInterpreter],
) -> Tuple[Set[_State], Dict[_State, Set[_State]]]:
    """The inter-IXP forwarding graph for one (prefix, flow) pair.

    An edge ``(k, s) -> (k', t)`` means: sender ``s``'s traffic for the
    prefix at exchange ``k`` is delivered to transit ``t``'s port, and
    ``t``'s route at ``k`` was relayed from exchange ``k'`` — so ``t``
    hauls the packet there and re-injects it as a sender on ``k'``'s
    fabric.
    """
    nodes: Set[_State] = set()
    edges: Dict[_State, Set[_State]] = {}
    for exchange, controller in federation.controllers():
        interpreter = interpreters[exchange]
        for spec in controller.config.participants():
            if not spec.ports or not interpreter.can_probe(spec.name, prefix):
                continue
            state = (exchange, spec.name)
            nodes.add(state)
            tag = interpreter.tag(spec.name, prefix)
            packet = _probe_packet(prefix, dstport, tag)
            for port, _ in interpreter.expected_deliveries(
                spec.name, prefix, packet
            ):
                try:
                    owner = controller.config.owner_of_port(port).name
                except KeyError:
                    continue  # chain-hop or virtual port: stays in-fabric
                link = federation.relay_for(exchange, owner, prefix)
                if link is not None:
                    successor = (link.src, link.src_name)
                    nodes.add(successor)
                    edges.setdefault(state, set()).add(successor)
    return nodes, edges


def check_federation_loop_freedom(
    federation: "FederatedExchange",
) -> List[InvariantViolation]:
    """No (prefix, flow) may cycle through the inter-IXP re-entry graph.

    Counterexamples are minimized along both axes the walk varies:
    the bare flow (no dstport) is tried before any policy-specific
    port, and only the fields the surviving packet actually carries are
    reported — so an injected ping-pong shows up as one violation
    naming the exchanges on the cycle and the single header that
    triggers it.
    """
    violations: List[InvariantViolation] = []
    flows = _flow_keys(federation)
    interpreters = {
        name: ReferenceInterpreter(controller)
        for name, controller in federation.controllers()
    }
    for prefix in sorted(federation.prefixes()):
        for dstport in flows:
            nodes, edges = _reentry_edges(federation, prefix, dstport, interpreters)
            cycle = find_cycle(nodes, edges)
            if cycle is None:
                continue
            exchanges = sorted({exchange for exchange, _ in cycle})
            rendered = " -> ".join(f"{k}:{s}" for k, s in cycle)
            flow = "any flow" if dstport is None else f"dstport={dstport}"
            violations.append(
                InvariantViolation(
                    "inter-ixp-loop",
                    rendered,
                    f"policy ping-pong between exchanges "
                    f"{' and '.join(repr(e) for e in exchanges)}: traffic for "
                    f"{prefix} ({flow}) re-enters each fabric indefinitely",
                )
            )
            break  # one minimized counterexample per prefix
    return violations


def check_cross_exchange_consistency(
    federation: "FederatedExchange",
) -> List[InvariantViolation]:
    """Every live relayed route is coherent at both ends of its link.

    * the backing route still exists at the source exchange and is the
      transit's current best there (a mismatch means a missed
      :meth:`~repro.federation.exchange.FederatedExchange.sync`);
    * the destination route's AS path is the backing path with the
      transit's ASN prepended exactly once;
    * its next-hop is one of the transit's own ports on the destination
      peering LAN (the inter-IXP hop is deliverable);
    * VMAC coherence: every destination member that sees the relayed
      route can resolve a tag for it, so re-entering traffic is
      taggable by the destination fabric's own ARP.
    """
    violations: List[InvariantViolation] = []
    for link in federation.links():
        if not link.up:
            continue
        src_server = federation.exchange(link.src).route_server
        dst_controller = federation.exchange(link.dst)
        dst_server = dst_controller.route_server
        dst_spec = dst_controller.config.participant(link.dst_name)
        interpreter = ReferenceInterpreter(dst_controller)
        for prefix in sorted(link.relayed_prefixes()):
            subject = f"{link.name} {prefix}"
            backing = link.backing_route(prefix)
            current = src_server.loc_rib(link.src_name).best(prefix)
            if current is None:
                violations.append(
                    InvariantViolation(
                        "cross-exchange-bgp",
                        subject,
                        f"relayed into {link.dst!r} but AS {link.transit_asn} "
                        f"no longer holds a route at {link.src!r} (stale relay)",
                    )
                )
            elif current != backing:
                violations.append(
                    InvariantViolation(
                        "cross-exchange-bgp",
                        subject,
                        f"backing route at {link.src!r} changed since the "
                        "last sync (stale relay)",
                    )
                )
            relayed = dst_server.route_from(link.dst_name, prefix)
            if relayed is None:
                violations.append(
                    InvariantViolation(
                        "cross-exchange-bgp",
                        subject,
                        f"link records a relay but {link.dst!r}'s route server "
                        f"has no route from {link.dst_name!r} (dangling relay)",
                    )
                )
                continue
            if backing is not None:
                expected_path = backing.attributes.as_path.prepend(link.transit_asn)
                if relayed.attributes.as_path != expected_path:
                    violations.append(
                        InvariantViolation(
                            "cross-exchange-bgp",
                            subject,
                            f"AS path [{relayed.attributes.as_path}] is not the "
                            f"backing path with AS {link.transit_asn} prepended "
                            f"once ([{expected_path}])",
                        )
                    )
            if dst_spec.port_for_address(relayed.attributes.next_hop) is None:
                violations.append(
                    InvariantViolation(
                        "cross-exchange-bgp",
                        subject,
                        f"next-hop {relayed.attributes.next_hop} is not one of "
                        f"AS {link.transit_asn}'s ports at {link.dst!r} — the "
                        "inter-IXP hop cannot be delivered",
                    )
                )
            for spec in dst_controller.config.participants():
                if spec.name == link.dst_name or not spec.ports:
                    continue
                if not relayed.exported_to(spec.name):
                    continue
                view = dst_server.loc_rib(spec.name)
                if view.best(prefix) is None:
                    continue
                if interpreter.tag(spec.name, prefix) is None:
                    violations.append(
                        InvariantViolation(
                            "cross-exchange-bgp",
                            subject,
                            f"{spec.name!r} at {link.dst!r} sees the relayed "
                            "route but no VMAC/interface tag resolves for it "
                            "(VMAC incoherence)",
                        )
                    )
    return violations


def check_federation(federation: "FederatedExchange") -> List[InvariantViolation]:
    """The full federation invariant sweep (both checkers)."""
    violations = check_cross_exchange_consistency(federation)
    violations.extend(check_federation_loop_freedom(federation))
    return violations


# -- end-to-end differential tracing ------------------------------------------


class FederationHop(NamedTuple):
    """One fabric transit of an end-to-end trace."""

    exchange: str
    sender: str
    deliveries: FrozenSet[Tuple[str, object]]  # reference (port, dstip) set


class FederationTrace(NamedTuple):
    """A probe's path across the federation, diffed at every hop."""

    prefix: IPv4Prefix
    hops: Tuple[FederationHop, ...]
    mismatches: Tuple[Tuple[str, Mismatch], ...]  # (exchange, local mismatch)
    looped: bool  # the walk revisited an (exchange, sender) state

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.looped

    def render(self) -> str:
        path = " -> ".join(f"{hop.exchange}:{hop.sender}" for hop in self.hops)
        tail = " [LOOP]" if self.looped else ""
        return f"{self.prefix}: {path}{tail} ({len(self.mismatches)} mismatches)"


class FederationReport(NamedTuple):
    """Outcome of one federation-wide verification sweep."""

    per_exchange: Tuple[Tuple[str, CheckReport], ...]
    violations: Tuple[InvariantViolation, ...]
    traces: Tuple[FederationTrace, ...]

    @property
    def ok(self) -> bool:
        return (
            all(report.ok for _, report in self.per_exchange)
            and not self.violations
            and all(trace.ok for trace in self.traces)
        )

    def summary(self) -> str:
        lines = []
        for name, report in self.per_exchange:
            lines.append(f"[{name}] {report.summary()}")
        for violation in self.violations:
            lines.append(str(violation))
        bad_traces = [trace for trace in self.traces if not trace.ok]
        lines.append(
            f"federation: {len(self.per_exchange)} exchanges, "
            f"{len(self.violations)} federation violations, "
            f"{len(self.traces)} end-to-end traces "
            f"({len(bad_traces)} disagreeing)"
        )
        for trace in bad_traces:
            lines.append(trace.render())
            for exchange, mismatch in trace.mismatches:
                lines.append(f"  at {exchange}: {mismatch.explain()}")
        return "\n".join(lines)


class FederationChecker:
    """Drives per-exchange checks plus cross-fabric traces for a federation."""

    def __init__(self, federation: "FederatedExchange") -> None:
        self._federation = federation
        telemetry = federation.telemetry
        self._m_runs = telemetry.counter(
            "sdx_federation_verify_runs_total",
            "Federation verification sweeps by outcome",
            labels=("outcome",),
        )
        self._m_violations = telemetry.counter(
            "sdx_federation_verify_violations_total",
            "Cross-exchange invariant violations found",
            labels=("invariant",),
        )
        self._m_traces = telemetry.counter(
            "sdx_federation_verify_traces_total",
            "End-to-end probe traces by result",
            labels=("result",),
        )

    def trace_probe(
        self,
        exchange: str,
        sender: str,
        prefix: "IPv4Prefix | str",
        dstport: Optional[int] = None,
        max_hops: int = 8,
    ) -> FederationTrace:
        """Replay one probe end to end, diffing each fabric it crosses.

        At every hop the packet is re-tagged the way the *current*
        exchange's ARP would tag it for the current sender — exactly
        what the transit's router does when it re-injects the packet —
        and the hop's compiled deliveries are diffed against the
        reference interpreter before following any inter-IXP re-entry.
        """
        federation = self._federation
        prefix = IPv4Prefix(prefix)
        hops: List[FederationHop] = []
        mismatches: List[Tuple[str, Mismatch]] = []
        seen: Set[_State] = set()
        state: Optional[_State] = (exchange, sender)
        looped = False
        while state is not None and len(hops) < max_hops:
            if state in seen:
                looped = True
                break
            seen.add(state)
            hop_exchange, hop_sender = state
            controller = federation.exchange(hop_exchange)
            interpreter = ReferenceInterpreter(controller)
            spec = controller.config.participant(hop_sender)
            if not spec.ports or not interpreter.can_probe(hop_sender, prefix):
                break
            tag = interpreter.tag(hop_sender, prefix)
            packet = _probe_packet(prefix, dstport, tag)
            probe = Probe(hop_sender, spec.ports[0].port_id, prefix, packet)
            checker = DifferentialChecker(controller)
            mismatch = checker.check_probe(probe, interpreter)
            if mismatch is not None:
                mismatches.append(
                    (hop_exchange, checker.minimize(mismatch, interpreter))
                )
            deliveries = interpreter.expected_deliveries(hop_sender, prefix, packet)
            hops.append(FederationHop(hop_exchange, hop_sender, deliveries))
            state = None
            for port, _ in sorted(deliveries, key=lambda d: str(d[0])):
                try:
                    owner = controller.config.owner_of_port(port).name
                except KeyError:
                    continue
                link = federation.relay_for(hop_exchange, owner, prefix)
                if link is not None:
                    state = (link.src, link.src_name)
                    break
        return FederationTrace(prefix, tuple(hops), tuple(mismatches), looped)

    def sweep(
        self,
        probes: int = 32,
        seed: int = 0,
        traces_per_link: int = 4,
    ) -> FederationReport:
        """One full pass: local checks, federation invariants, e2e traces.

        ``probes`` is the per-exchange differential budget; each link
        additionally gets up to ``traces_per_link`` relayed prefixes
        traced end to end from every eligible sender at its destination
        exchange.
        """
        federation = self._federation
        per_exchange = tuple(
            (name, DifferentialChecker(controller).check(probes=probes, seed=seed))
            for name, controller in federation.controllers()
        )
        violations = tuple(check_federation(federation))
        for violation in violations:
            self._m_violations.inc(invariant=violation.invariant)

        traces: List[FederationTrace] = []
        for link in federation.links():
            if not link.up:
                continue
            dst_controller = federation.exchange(link.dst)
            interpreter = ReferenceInterpreter(dst_controller)
            for prefix in sorted(link.relayed_prefixes())[:traces_per_link]:
                for spec in dst_controller.config.participants():
                    if spec.name == link.dst_name or not spec.ports:
                        continue
                    if not interpreter.can_probe(spec.name, prefix):
                        continue
                    trace = self.trace_probe(link.dst, spec.name, prefix)
                    traces.append(trace)
                    self._m_traces.inc(result="ok" if trace.ok else "mismatch")

        report = FederationReport(per_exchange, violations, tuple(traces))
        self._m_runs.inc(outcome="ok" if report.ok else "failed")
        return report
