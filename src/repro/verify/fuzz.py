"""Seeded fuzz harness: random workloads under differential verification.

Each scenario builds a synthetic exchange (the §6.1 workload mix),
then applies a random sequence of control-plane events — policy edits,
BGP update bursts, withdrawals, fast-path flushes, and delta-reconciled
recompilations — running the full differential + invariant check after
the initial compile and after **every** subsequent commit.  Any
disagreement between the compiled tables and the reference interpreter
surfaces as a minimized one-packet counterexample tied to the seed that
produced it.

Reproduce a failure exactly::

    PYTHONPATH=src python -m repro.verify.fuzz --seed 17

CI runs a bounded smoke pass (``make verify-fuzz``); the integration
suite sweeps 25+ seeds through the same entry point.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.core.participant import SDXPolicySet
from repro.experiments.common import build_scenario
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import fwd, match, parallel
from repro.verify.checker import CheckReport, DifferentialChecker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["ScenarioResult", "main", "run_scenario"]

_STEP_KINDS = ("edit", "burst", "withdraw", "flush", "reconcile")
_APP_PORTS = (80, 443, 8080, 1935, 8443)


class ScenarioResult(NamedTuple):
    """One fuzz scenario's outcome."""

    seed: int
    steps: Tuple[str, ...]  # the event sequence actually applied
    checks: int  # differential passes run (initial + per commit)
    probes_checked: int  # admissible probes compared across all passes
    reports: Tuple[CheckReport, ...]  # the failing reports only

    @property
    def ok(self) -> bool:
        return not self.reports

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (
            f"seed {self.seed:4d}: {status}  "
            f"steps=[{', '.join(self.steps)}]  "
            f"checks={self.checks} probes={self.probes_checked}"
        )
        if self.ok:
            return line
        return "\n".join([line] + [report.summary() for report in self.reports])


def _alternate_route(
    controller: "SDXController",
    rng: random.Random,
    announcers: Dict[IPv4Prefix, List[str]],
) -> Optional[Tuple[str, IPv4Prefix, RouteAttributes]]:
    """A plausible extra announcement: another peer offering a known prefix."""
    prefix = rng.choice(sorted(announcers, key=str))
    origins = announcers[prefix]
    names = [
        n
        for n in controller.config.participant_names()
        if n not in origins and controller.config.participant(n).ports
    ]
    if not names:
        return None
    name = rng.choice(names)
    spec = controller.config.participant(name)
    origin_asn = controller.config.participant(rng.choice(origins)).asn
    attributes = RouteAttributes(
        as_path=[spec.asn, 64900 + rng.randrange(64), origin_asn],
        next_hop=spec.ports[rng.randrange(len(spec.ports))].address,
        med=rng.choice((0, 10, 50)),
        local_pref=rng.choice((50, 100, 100, 200)),
    )
    return name, prefix, attributes


def _fresh_outbound(
    controller: "SDXController", rng: random.Random
) -> Optional[Tuple[str, SDXPolicySet]]:
    """A new outbound policy edit for a random participant."""
    names = list(controller.config.participant_names())
    sender = rng.choice(names)
    targets = [n for n in names if n != sender]
    if not targets:
        return None
    clauses = [
        match(dstport=rng.choice(_APP_PORTS)) >> fwd(rng.choice(targets))
        for _ in range(rng.randrange(1, 3))
    ]
    existing = controller.policy.policies().get(sender)
    inbound = existing.inbound if existing is not None else None
    return sender, SDXPolicySet(outbound=parallel(*clauses), inbound=inbound)


def run_scenario(
    seed: int,
    participants: int = 12,
    prefixes: int = 96,
    steps: int = 8,
    probes: int = 48,
    budget: Optional[int] = None,
) -> ScenarioResult:
    """Run one seeded scenario; the checker runs after every commit.

    ``budget`` caps each pass like a guarded commit would (overriding
    ``probes``), so a guard incident replays at the exact spend that
    found it.
    """
    if budget is not None:
        probes = budget
    rng = random.Random(seed)
    scenario = build_scenario(
        participants=participants,
        prefixes=prefixes,
        seed=seed,
        policy_seed=seed + 1,
    )
    controller = scenario.controller()
    checker = DifferentialChecker(controller)

    announcers: Dict[IPv4Prefix, List[str]] = {}
    for name, announced in scenario.ixp.announced.items():
        for prefix in announced:
            announcers.setdefault(prefix, []).append(name)
    extra: List[Tuple[str, IPv4Prefix]] = []  # fuzz-added announcements

    applied: List[str] = []
    failing: List[CheckReport] = []
    checks = probes_checked = 0

    def run_check() -> None:
        nonlocal checks, probes_checked
        report = checker.check(probes=probes, seed=seed * 1000 + checks)
        checks += 1
        probes_checked += report.checked
        if not report.ok:
            failing.append(report)

    run_check()  # the freshly built exchange must already verify

    for _ in range(steps):
        kind = rng.choice(_STEP_KINDS)
        if kind == "edit":
            edit = _fresh_outbound(controller, rng)
            if edit is None:
                continue
            controller.policy.set_policies(edit[0], edit[1], recompile=True)
        elif kind == "burst":
            with controller.routing.batched_updates():
                for _ in range(rng.randrange(2, 6)):
                    alt = _alternate_route(controller, rng, announcers)
                    if alt is None:
                        continue
                    name, prefix, attributes = alt
                    controller.routing.announce(name, prefix, attributes)
                    extra.append((name, prefix))
        elif kind == "withdraw":
            if not extra:
                continue
            name, prefix = extra.pop(rng.randrange(len(extra)))
            controller.routing.withdraw(name, prefix)
        elif kind == "flush":
            # Fold any fast-path overrides back into the base table.
            controller.run_background_recompilation()
        else:  # reconcile: an explicit delta-reconciled commit
            controller.compile()
        applied.append(kind)
        run_check()

    return ScenarioResult(
        seed=seed,
        steps=tuple(applied),
        checks=checks,
        probes_checked=probes_checked,
        reports=tuple(failing),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="differential fuzz of the SDX compilation pipeline",
    )
    parser.add_argument(
        "--seeds", type=int, default=6, help="run seeds 0..N-1 (default 6)"
    )
    parser.add_argument(
        "--seed", type=int, action="append", default=None,
        help="run one explicit seed (repeatable; overrides --seeds)",
    )
    parser.add_argument("--participants", type=int, default=12)
    parser.add_argument("--prefixes", type=int, default=96)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--probes", type=int, default=48)
    parser.add_argument(
        "--budget", type=int, default=None,
        help="per-pass probe budget (overrides --probes; matches the "
        "commit guard's per-commit cap)",
    )
    options = parser.parse_args(argv)

    seeds = options.seed if options.seed else list(range(options.seeds))
    effective_budget = (
        options.budget if options.budget is not None else options.probes
    )
    failures = 0
    for seed in seeds:
        result = run_scenario(
            seed,
            participants=options.participants,
            prefixes=options.prefixes,
            steps=options.steps,
            probes=options.probes,
            budget=options.budget,
        )
        print(result.summary())
        if not result.ok:
            failures += 1
            print(
                f"reproduce with: PYTHONPATH=src python -m repro.verify.fuzz "
                f"--seed {seed} --participants {options.participants} "
                f"--prefixes {options.prefixes} --steps {options.steps} "
                f"--budget {effective_budget}"
            )
    total = len(seeds)
    print(f"verify-fuzz: {total - failures}/{total} scenarios clean")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
