"""The reference interpreter: ground truth for one packet's forwarding.

The interpreter answers "where *should* this packet leave the fabric?"
using only the inputs the SDX promises to honor — the participants'
policy ASTs and the route server's RIB state.  Nothing from the
compilation pipeline is consulted: no classifiers, no FEC table, no
VNH/VMAC encoding, no flow rules.  That independence is the point; the
differential checker diffs the compiled data plane against this model.

The decision procedure mirrors Sections 3.2 and 4.1 of the paper:

1. evaluate the sender's outbound policy AST on the (untagged) packet;
2. keep outputs whose target may legitimately carry the destination —
   participant targets must have advertised the prefix to the sender
   (the BGP-consistency rule); service-chain and physical-port targets
   pass through (their legitimacy is the operator's to grant when the
   chain is registered);
3. if nothing feasible remains, fall back to the sender's best BGP
   route (plain default forwarding);
4. at the receiving participant's virtual switch, evaluate the inbound
   policy AST; failing that, deliver out the port that announced the
   route the traffic followed;
5. a service-chain target delivers at the chain's first hop (the
   middlebox port), headers untouched.

Quarantined participants are degraded to BGP-default forwarding, just
as the fault-isolated compiler degrades them.

Scope: the oracle treats "the policy yields no output" as "the policy
does not claim the packet" and falls back to default forwarding.  This
is exact for the match-and-forward policy algebra of the §6.1 workload
generator (and for everything the compiler's ``with_fallback`` sealing
produces for it); a policy built to *explicitly* drop claimed traffic
via ``if_(pred, drop, ...)`` is outside the modeled regime.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Optional,
    Set,
    Tuple,
)

from repro.core.chaining import ServiceChain
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress
from repro.policy.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["Delivery", "ReferenceInterpreter"]

#: One ground-truth egress: (physical port, dstip the frame carries).
#: This is exactly the observable the differential checker compares —
#: dstmac is an encoding artifact the oracle deliberately ignores.
Delivery = Tuple[str, Any]


class ReferenceInterpreter:
    """Policy-AST + RIB evaluation of single-packet forwarding."""

    def __init__(self, controller: "SDXController") -> None:
        self._controller = controller
        self._config = controller.config
        self._server = controller.route_server
        # Per-run caches; build one interpreter per check pass, not one
        # per controller lifetime — RIB or policy mutations invalidate.
        self._policies = dict(controller.policy.policies())
        self._quarantined = frozenset(controller.ops.quarantined())
        self._port_ids = frozenset(
            port.port_id for port in self._config.physical_ports()
        )
        #: (sender, prefix) -> advertised next-hop (None: not advertised)
        self._adv_cache: Dict[
            Tuple[str, IPv4Prefix], Optional[IPv4Address]
        ] = {}

    # -- probe admissibility ------------------------------------------------

    def tag(self, sender: str, prefix: IPv4Prefix) -> Optional[MACAddress]:
        """The dstmac ``sender``'s border router would put on the frame.

        Routers learn next-hops from the SDX's re-advertisements and
        resolve them over ARP: a virtual next-hop resolves to its VMAC,
        a real next-hop to the announcing interface's MAC.  ``None``
        means the sender holds no route — its router would never emit
        the packet, so there is nothing to verify.
        """
        prefix = IPv4Prefix(prefix)
        key = (sender, prefix)
        if key in self._adv_cache:
            next_hop = self._adv_cache[key]
        else:
            # Single-prefix query: materializing the sender's whole
            # re-advertisement list per probe would dominate a budgeted
            # guard pass (the checker probes a handful of prefixes, not
            # the universe).
            next_hop = self._controller.advertised_next_hop(sender, prefix)
            self._adv_cache[key] = next_hop
        if next_hop is None:
            return None
        vmac = self._controller.arp.resolve(next_hop)
        if vmac is not None:
            return vmac
        owner = self._config.owner_of_address(next_hop)
        if owner is None:
            return None
        port = owner.port_for_address(next_hop)
        return port.hardware if port is not None else None

    def can_probe(self, sender: str, prefix: IPv4Prefix) -> bool:
        """True when a probe from ``sender`` toward ``prefix`` is meaningful.

        Paper invariant: announcers never forward traffic for their own
        prefixes back into the fabric, and a sender with no route (no
        tag) never emits the packet at all.
        """
        prefix = IPv4Prefix(prefix)
        if self._server.route_from(sender, prefix) is not None:
            return False
        return self.tag(sender, prefix) is not None

    # -- the decision procedure ---------------------------------------------

    def expected_deliveries(
        self, sender: str, prefix: IPv4Prefix, packet: Packet
    ) -> FrozenSet[Delivery]:
        """Ground-truth ``(egress port, dstip)`` set for one probe.

        ``packet`` is the frame as the border router emits it (dstmac
        tagged); the policy ASTs are evaluated on it directly, so any
        header the policy matches or rewrites is honored.
        """
        prefix = IPv4Prefix(prefix)
        loc_rib = self._server.loc_rib(sender)
        deliveries: Set[Delivery] = set()
        outbound = None
        if sender not in self._quarantined:
            policy_set = self._policies.get(sender)
            outbound = policy_set.outbound if policy_set is not None else None
        if outbound is not None:
            for out in outbound.eval(packet):
                target = out.get("port")
                if isinstance(target, ServiceChain):
                    # Chain entry: egress at the first middlebox hop,
                    # headers (including the tag) untouched.
                    deliveries.add((target.hops[0], out.get("dstip")))
                elif target in self._port_ids:
                    deliveries.add((target, out.get("dstip")))
                elif target in self._config and prefix in loc_rib.prefixes_via(target):
                    deliveries |= self._deliver(target, prefix, out)
        if deliveries:
            return frozenset(deliveries)
        best = loc_rib.best(prefix)
        if best is None:
            return frozenset()
        return frozenset(self._deliver(best.learned_from, prefix, packet))

    def _deliver(
        self, target: str, prefix: IPv4Prefix, carried: Packet
    ) -> Set[Delivery]:
        """Delivery at participant ``target``'s virtual switch."""
        spec = self._config.participant(target)
        inbound = None
        if target not in self._quarantined:
            policy_set = self._policies.get(target)
            inbound = policy_set.inbound if policy_set is not None else None
        if inbound is not None:
            outs = inbound.eval(carried)
            if outs:
                return {(out["port"], out.get("dstip")) for out in outs}
        route = self._server.route_from(target, prefix)
        if route is None:
            return set()
        port = spec.port_for_address(route.attributes.next_hop)
        if port is None:
            # Remote participant or a next-hop off the peering LAN:
            # the fabric has no interface to hand the frame to.
            return set()
        return {(port.port_id, carried.get("dstip"))}
