"""Structural invariants over the compiled SDX tables.

Where the differential checker samples behavior one packet at a time,
these checkers sweep the *whole* installed state — base table,
fast-path overrides, allocator, ARP — for properties that must hold
after every commit:

* **isolation** — every rule in a participant's policy segment matches
  only on that participant's own ingress ports (Section 4.1's isolation
  transform survived composition);
* **bgp-consistency** — a rule matching a VMAC tag only forwards to
  ports of participants that actually advertised (a prefix of) the
  tagged forwarding class, per the tagging sender's Loc-RIB view when
  the rule is sender-scoped;
* **loop-freedom** — the re-entry graph over middlebox (service-chain
  hop) ports is acyclic, so no composition of policies and chain
  continuations can cycle a frame through the fabric (the Prelude-style
  check for SDX rule composition);
* **vnh-state** — the (VNH, VMAC) encoding is a bijection (distinct
  addresses, distinct VMACs, ARP resolves each), and the allocator
  holds *exactly* the VNHs the pipeline and fast path account for — no
  leaks, no dangling references.

Each check returns a list of :class:`InvariantViolation`; the
differential checker folds them into its report and telemetry.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.netutils.ip import IPv4Prefix
from repro.netutils.mac import MACMask
from repro.pipeline.stages import BASE_COOKIE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = [
    "InvariantViolation",
    "check_all_invariants",
    "check_bgp_consistency",
    "check_isolation",
    "check_loop_freedom",
    "check_vnh_state",
    "find_cycle",
]


def find_cycle(nodes, edges) -> Optional[List[Any]]:
    """First cycle in a directed graph, as a closed walk ``[a, ..., a]``.

    ``edges`` maps each node to its successors (absent keys mean no
    successors).  Deterministic: nodes and successors are visited in
    sorted order, so the same graph always reports the same cycle —
    both the chain-hop loop checker below and the federation verifier's
    inter-IXP walk lean on that for stable counterexamples.  Returns
    ``None`` for an acyclic graph.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in nodes}
    stack_path: List[Any] = []

    def visit(node) -> Optional[List[Any]]:
        color[node] = GRAY
        stack_path.append(node)
        for succ in sorted(edges.get(node, ())):
            if color.get(succ) == GRAY:
                return stack_path[stack_path.index(succ):] + [succ]
            if color.get(succ) == WHITE:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        stack_path.pop()
        color[node] = BLACK
        return None

    for node in sorted(color):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
            stack_path.clear()
    return None


class InvariantViolation(NamedTuple):
    """One broken invariant, locatable enough to debug from."""

    invariant: str  # isolation | bgp-consistency | loop-freedom | vnh-state
    subject: str  # the rule/port/VNH at fault, rendered
    detail: str  # what should have held and what was found

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


def check_all_invariants(controller: "SDXController") -> List[InvariantViolation]:
    """Run every invariant checker; concatenated violations."""
    violations = check_isolation(controller)
    violations.extend(check_bgp_consistency(controller))
    violations.extend(check_loop_freedom(controller))
    violations.extend(check_vnh_state(controller))
    return violations


# -- participant isolation ----------------------------------------------------


def check_isolation(controller: "SDXController") -> List[InvariantViolation]:
    """Policy-segment rules may match only their owner's ingress ports."""
    violations: List[InvariantViolation] = []
    for rule in controller.switch.table:
        cookie = rule.cookie
        if not (
            isinstance(cookie, tuple)
            and len(cookie) == 3
            and cookie[0] == BASE_COOKIE
            and cookie[1] == "policy"
        ):
            continue
        owner = cookie[2]
        allowed = (
            controller.config.participant(owner).port_ids
            if owner in controller.config
            else ()
        )
        port = rule.match.constraints.get("port")
        if port is None:
            violations.append(
                InvariantViolation(
                    "isolation",
                    repr(rule),
                    f"policy rule of {owner!r} has no ingress-port constraint",
                )
            )
        elif port not in allowed:
            violations.append(
                InvariantViolation(
                    "isolation",
                    repr(rule),
                    f"policy rule of {owner!r} pinned to foreign port {port!r}",
                )
            )
    return violations


# -- BGP consistency ----------------------------------------------------------


def check_bgp_consistency(controller: "SDXController") -> List[InvariantViolation]:
    """VMAC-tagged rules egress only via participants that advertised.

    The tag identifies a forwarding class (a FEC group, or one fast-path
    prefix); any physical egress the rule performs — other than into a
    registered service-chain hop — must land on a port of a participant
    holding a route for some prefix of that class.  When the rule is
    scoped to a sender's ingress port, the stricter per-sender view
    applies: the route must actually be exported to that sender.

    Under the superset encoding a tag may be *masked* — one rule
    covering every VMAC with a given attribute bit set.  The masked
    rule is consistent exactly when every **live** VMAC it matches
    passes the per-class check above: the mask widens the quantifier,
    not the property.  (A mask matching no live VMAC is vacuous — no
    frame the fabric ARP'd for can reach it.)
    """
    violations: List[InvariantViolation] = []
    config = controller.config
    server = controller.route_server

    tag_classes: Dict[Any, FrozenSet[IPv4Prefix]] = {}
    last = controller.last_compilation
    if last is not None:
        for group in last.fec_table.affected_groups:
            tag_classes[group.vnh.hardware] = group.prefixes
    for prefix, vnh in controller.fast_path.active_vnhs().items():
        tag_classes[vnh.hardware] = frozenset((prefix,))
    interface_owner = {
        port.hardware: spec.name
        for spec in config.participants()
        for port in spec.ports
    }
    port_owner = {
        port.port_id: spec.name
        for spec in config.participants()
        for port in spec.ports
    }
    chain_hops = controller.policy.chain_hop_ports()
    exported_cache: Dict[Tuple[str, str], FrozenSet[IPv4Prefix]] = {}

    def exported(sender: str, via: str) -> FrozenSet[IPv4Prefix]:
        key = (sender, via)
        found = exported_cache.get(key)
        if found is None:
            found = server.loc_rib(sender).prefixes_via(via)
            exported_cache[key] = found
        return found

    for rule in controller.switch.table:
        if rule.is_drop:
            continue
        tag = rule.match.constraints.get("dstmac")
        if tag is None:
            continue
        sender = None
        ingress = rule.match.constraints.get("port")
        if ingress is not None:
            sender = port_owner.get(ingress)
        if isinstance(tag, MACMask) and not tag.is_exact:
            # Superset-encoded masked tag: the rule stands for every
            # live VMAC the mask matches, and each matched class must
            # pass the check independently.
            classes = [
                prefix_set
                for vmac, prefix_set in tag_classes.items()
                if tag.matches(vmac)
            ]
        elif tag in tag_classes:
            classes = [tag_classes[tag]]
        elif tag in interface_owner:
            classes = None  # interface-MAC tag: default delivery
        else:
            violations.append(
                InvariantViolation(
                    "bgp-consistency",
                    repr(rule),
                    f"matches unknown tag {tag!r}: neither a live VMAC "
                    "nor a peering interface MAC (stale or leaked rule)",
                )
            )
            continue
        if rule.goto is not None:
            # Multi-table stage-1 rule: it forwards to a *virtual*
            # location and chains on — the physical egress happens in
            # the goto table, whose rules carry their own VMAC matches
            # and are checked in their own right.
            continue
        for action in rule.actions:
            egress = action.output_port
            if egress is None or egress in chain_hops:
                continue
            target = port_owner.get(egress)
            if target is None:
                violations.append(
                    InvariantViolation(
                        "bgp-consistency",
                        repr(rule),
                        f"egress {egress!r} is not a physical peering port",
                    )
                )
                continue
            if classes is None:
                # Interface-MAC tag: plain default delivery — the frame
                # must stay with the participant owning that interface.
                if target != interface_owner[tag]:
                    violations.append(
                        InvariantViolation(
                            "bgp-consistency",
                            repr(rule),
                            f"interface tag of {interface_owner[tag]!r} "
                            f"delivered to {target!r}'s port {egress!r}",
                        )
                    )
                continue
            for prefixes in classes:
                if sender is not None:
                    ok = any(p in exported(sender, target) for p in prefixes)
                else:
                    ok = any(
                        server.route_from(target, p) is not None for p in prefixes
                    )
                if not ok:
                    shown = ", ".join(sorted(map(str, prefixes))[:3])
                    violations.append(
                        InvariantViolation(
                            "bgp-consistency",
                            repr(rule),
                            f"egress via {target!r} which advertised no route "
                            f"for the tagged class {{{shown}}}"
                            + (f" visible to sender {sender!r}" if sender else ""),
                        )
                    )
    return violations


# -- virtual-topology loop freedom --------------------------------------------


def check_loop_freedom(controller: "SDXController") -> List[InvariantViolation]:
    """The middlebox re-entry graph must be acyclic.

    Chain-hop ports are the only fabric egresses whose traffic comes
    *back* (a middlebox re-injects the frame); router-facing ports
    terminate a path.  A cycle among hop ports means a frame could
    orbit the fabric forever — the failure mode Prelude flags for
    composed SDX policies.  Rules without an ingress constraint can be
    entered from any port, so they contribute edges from every hop.
    """
    hops = controller.policy.chain_hop_ports()
    if not hops:
        return []
    edges: Dict[str, Set[str]] = {hop: set() for hop in hops}
    for rule in controller.switch.table:
        if rule.is_drop:
            continue
        targets = {
            action.output_port
            for action in rule.actions
            if action.output_port in hops
        }
        if not targets:
            continue
        ingress = rule.match.constraints.get("port")
        if ingress is None:
            sources = hops
        elif ingress in hops:
            sources = (ingress,)
        else:
            continue  # router-port ingress: an entry edge, not a cycle edge
        for source in sources:
            edges[source] |= targets

    cycle = find_cycle(hops, edges)
    if cycle is None:
        return []
    return [
        InvariantViolation(
            "loop-freedom",
            " -> ".join(cycle),
            "service-chain hop ports form a forwarding cycle",
        )
    ]


# -- VNH/VMAC bijection and leak detection ------------------------------------


def check_vnh_state(controller: "SDXController") -> List[InvariantViolation]:
    """The (VNH, VMAC) encoding is a live, leak-free bijection.

    * every referenced VNH has a distinct address and a distinct VMAC,
      and ARP resolves the address to exactly that VMAC;
    * the allocator holds exactly the union of the pipeline's FEC VNHs
      (including those pending release until the next commit) and the
      fast path's per-prefix VNHs — anything extra is a leak (the PR-2
      flap-storm bug class), anything missing is a dangling reference.
    """
    violations: List[InvariantViolation] = []
    referenced = []
    last = controller.last_compilation
    if last is not None:
        referenced.extend(
            (f"group {group.group_id}", group.vnh)
            for group in last.fec_table.affected_groups
        )
    referenced.extend(
        (f"fast-path {prefix}", vnh)
        for prefix, vnh in sorted(
            controller.fast_path.active_vnhs().items(), key=lambda kv: str(kv[0])
        )
    )

    by_address: Dict[Any, str] = {}
    by_vmac: Dict[Any, str] = {}
    for origin, vnh in referenced:
        holder = by_address.get(vnh.address)
        if holder is not None and holder != origin:
            violations.append(
                InvariantViolation(
                    "vnh-state",
                    str(vnh.address),
                    f"VNH address shared by {holder} and {origin}",
                )
            )
        by_address.setdefault(vnh.address, origin)
        holder = by_vmac.get(vnh.hardware)
        if holder is not None and holder != origin:
            violations.append(
                InvariantViolation(
                    "vnh-state",
                    str(vnh.hardware),
                    f"VMAC shared by {holder} and {origin}",
                )
            )
        by_vmac.setdefault(vnh.hardware, origin)
        resolved = controller.arp.resolve(vnh.address)
        if resolved != vnh.hardware:
            violations.append(
                InvariantViolation(
                    "vnh-state",
                    str(vnh.address),
                    f"ARP resolves {origin}'s VNH to {resolved!r}, "
                    f"expected {vnh.hardware!r}",
                )
            )

    expected = set(controller.pipeline.live_vnh_addresses())
    expected.update(
        vnh.address for vnh in controller.fast_path.active_vnhs().values()
    )
    allocated = {vnh.address for vnh in controller.allocator}
    for address in sorted(allocated - expected, key=str):
        violations.append(
            InvariantViolation(
                "vnh-state",
                str(address),
                "allocated VNH not accounted for by the pipeline or "
                "fast path (leak)",
            )
        )
    for address in sorted(expected - allocated, key=str):
        violations.append(
            InvariantViolation(
                "vnh-state",
                str(address),
                "live VNH reference no longer held by the allocator "
                "(dangling)",
            )
        )
    return violations
