"""Differential verification oracle for the SDX data plane.

Four PRs of optimization (sharded pipeline, shard caches, the fast
path, delta fabric reconciliation) stand between a participant's policy
and the installed flow table.  This package is the independent referee
that checks the paper's core promise — compiled rules forward exactly
where policies joined with BGP say traffic may go (Sections 3.2, 4.1):

* :mod:`repro.verify.interpreter` — a **reference interpreter** that
  evaluates a packet directly against the policy ASTs and route-server
  state (no classifier compilation, no FEC/VMAC encoding) to produce
  the ground-truth forwarding decision;
* :mod:`repro.verify.checker` — a **differential checker** driving
  generated probe packets through the compiled flow table (base +
  fast-path + post-reconcile) and diffing the outcomes against the
  interpreter, minimizing any disagreement to a one-packet
  counterexample;
* :mod:`repro.verify.invariants` — structural **invariant checkers**
  over the compiled tables: participant isolation, BGP-consistency
  (egress only via advertised routes), virtual-topology loop-freedom,
  and the VNH/VMAC↔FEC bijection with leak detection;
* :mod:`repro.verify.federation` — the **federation sweep** for
  multi-IXP deployments (:mod:`repro.federation`): inter-IXP
  loop-freedom over the cross-exchange re-entry graph, relay
  consistency audits, and end-to-end probe traces spanning fabrics;
* :mod:`repro.verify.fuzz` — a **seeded fuzz harness** (also
  ``make verify-fuzz``) replaying random workloads through policy
  edits, BGP update bursts, fast-path flushes, and delta-reconciled
  commits, running the full checker after every commit.

Operators reach the checker through the ops facet::

    report = controller.ops.verify(probes=128, seed=7)
    assert report.ok, report.summary()

Checker runs report into the controller's telemetry registry as the
``sdx_verify_*`` metric family.
"""

from repro.verify.checker import CheckReport, DifferentialChecker, Mismatch, Probe
from repro.verify.federation import (
    FederationChecker,
    FederationHop,
    FederationReport,
    FederationTrace,
    check_cross_exchange_consistency,
    check_federation,
    check_federation_loop_freedom,
)
from repro.verify.interpreter import ReferenceInterpreter
from repro.verify.invariants import (
    InvariantViolation,
    check_all_invariants,
    check_bgp_consistency,
    check_isolation,
    check_loop_freedom,
    check_vnh_state,
    find_cycle,
)

__all__ = [
    "CheckReport",
    "DifferentialChecker",
    "FederationChecker",
    "FederationHop",
    "FederationReport",
    "FederationTrace",
    "InvariantViolation",
    "Mismatch",
    "Probe",
    "ReferenceInterpreter",
    "check_all_invariants",
    "check_bgp_consistency",
    "check_cross_exchange_consistency",
    "check_federation",
    "check_federation_loop_freedom",
    "check_isolation",
    "check_loop_freedom",
    "check_vnh_state",
    "find_cycle",
]
