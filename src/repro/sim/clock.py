"""A minimal discrete-event simulator.

The deployment experiments (Figure 5) replay multi-minute timelines —
policy activations, route withdrawals, continuous UDP flows — far
faster than real time.  :class:`Simulator` provides the event loop;
everything else (traffic generators, controller actions) schedules
callbacks on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator"]


class Simulator:
    """A priority-queue event loop with a virtual clock in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``at``.

        Events scheduled for the past run at the current time; ties run
        in scheduling order.
        """
        heapq.heappush(self._queue, (max(at, self._now), next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        self.schedule(self._now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` periodically until ``until`` (inclusive start)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self._now if start is None else start

        def tick(at: float) -> None:
            if until is not None and at > until:
                return
            callback()
            self.schedule(at + interval, lambda: tick(at + interval))

        self.schedule(first, lambda: tick(first))

    def run_until(self, end: float) -> None:
        """Execute all events with time <= ``end``; clock lands on ``end``."""
        while self._queue and self._queue[0][0] <= end:
            at, _, callback = heapq.heappop(self._queue)
            self._now = at
            callback()
            self.events_run += 1
        self._now = max(self._now, end)

    def run(self) -> None:
        """Drain the queue completely."""
        while self._queue:
            at, _, callback = heapq.heappop(self._queue)
            self._now = at
            callback()
            self.events_run += 1

    def __repr__(self) -> str:
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
