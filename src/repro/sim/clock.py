"""A minimal discrete-event simulator.

The deployment experiments (Figure 5) replay multi-minute timelines —
policy activations, route withdrawals, continuous UDP flows — far
faster than real time.  :class:`Simulator` provides the event loop;
everything else (traffic generators, controller actions) schedules
callbacks on it.

Every ``schedule*`` call returns a :class:`TimerHandle` that the caller
may :meth:`~TimerHandle.cancel` — the protocol timers of
:mod:`repro.resilience` (hold timers, reconnect backoff, graceful-restart
timers) are re-armed and torn down constantly and rely on this.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "TimerHandle"]


class TimerHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("at", "_cancelled", "_fired")

    def __init__(self, at: float) -> None:
        self.at = at
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the event is still pending."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Prevent the callback from running; False if it already ran."""
        if not self.active:
            return False
        self._cancelled = True
        return True

    def __repr__(self) -> str:
        status = "cancelled" if self._cancelled else "fired" if self._fired else "pending"
        return f"TimerHandle(at={self.at}, {status})"


class Simulator:
    """A priority-queue event loop with a virtual clock in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[Tuple[float, int, TimerHandle, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, at: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute virtual time ``at``.

        Events scheduled for the past run at the current time; ties run
        in scheduling order.  Returns a cancellable handle.
        """
        when = max(at, self._now)
        handle = TimerHandle(when)
        heapq.heappush(self._queue, (when, next(self._counter), handle, callback))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        return self.schedule(self._now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> TimerHandle:
        """Run ``callback`` periodically until ``until`` (inclusive start).

        The returned handle cancels the whole repetition, including any
        tick already queued.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self._now if start is None else start
        master = TimerHandle(first)

        def tick(at: float) -> None:
            if master.cancelled:
                return
            if until is not None and at > until:
                return
            callback()
            master.at = at + interval
            self.schedule(at + interval, lambda: tick(at + interval))

        self.schedule(first, lambda: tick(first))
        return master

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending event, or None when idle.

        Cancelled heads are discarded on the way (they would otherwise
        make the answer pessimistic); the clock does not advance.
        """
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def _pop_runnable(self) -> Optional[Tuple[float, TimerHandle, Callable[[], None]]]:
        while self._queue:
            at, _, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            return at, handle, callback
        return None

    def run_until(self, end: float) -> None:
        """Execute all events with time <= ``end``; clock lands on ``end``."""
        while self._queue and self._queue[0][0] <= end:
            entry = self._pop_runnable()
            if entry is None:
                break
            at, handle, callback = entry
            if at > end:
                # A cancelled head hid a later event: put it back.
                heapq.heappush(self._queue, (at, next(self._counter), handle, callback))
                break
            self._now = at
            handle._fired = True
            callback()
            self.events_run += 1
        self._now = max(self._now, end)

    def run(self) -> None:
        """Drain the queue completely."""
        while True:
            entry = self._pop_runnable()
            if entry is None:
                break
            at, handle, callback = entry
            self._now = at
            handle._fired = True
            callback()
            self.events_run += 1

    def __repr__(self) -> str:
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
