"""Discrete-event simulation support for the deployment experiments."""

from repro.sim.clock import Simulator

__all__ = ["Simulator"]
