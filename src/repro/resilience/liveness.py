"""Session liveness: hold timers, backoff reconnection, graceful restart.

RFC 4271 keeps a BGP session alive with a hold timer that every
KEEPALIVE or UPDATE re-arms; silence past the hold time means the peer
is dead.  :class:`SessionLivenessManager` drives that machinery off the
discrete-event :class:`~repro.sim.clock.Simulator`, and layers on what a
production route server needs when a peer *does* die:

* **exponential-backoff reconnection** — a crashed peer is retried at
  1s, 2s, 4s, ... up to a cap, so a flapping peer cannot hammer the
  exchange with connection churn;
* **graceful restart (RFC 4724)** — for opted-in peers the route server
  retains their routes as *stale* while a restart timer runs; if the
  peer returns and refreshes them, no withdraw/re-announce storm ever
  happens, and only what it stops announcing is swept.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional

from repro.bgp.route_server import RouteServer
from repro.bgp.session import BGPSession, SessionState
from repro.sim.clock import Simulator, TimerHandle

__all__ = ["LivenessConfig", "PeerLiveness", "SessionLivenessManager"]


class LivenessConfig(NamedTuple):
    """Timer values, in (virtual) seconds."""

    hold_time: float = 90.0
    #: how long a failed peer's stale routes are retained (RFC 4724's
    #: Restart Time) before being swept
    restart_time: float = 120.0
    backoff_initial: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_max: float = 60.0
    #: retain routes across failures (graceful restart) for watched peers
    graceful_restart: bool = True


class PeerLiveness:
    """Mutable liveness state for one watched peer."""

    __slots__ = (
        "peer",
        "hold_timer",
        "restart_timer",
        "reconnect_timer",
        "backoff",
        "last_heard",
        "messages_heard",
        "hold_expirations",
        "reconnect_attempts",
    )

    def __init__(self, peer: str, backoff: float) -> None:
        self.peer = peer
        self.hold_timer: Optional[TimerHandle] = None
        self.restart_timer: Optional[TimerHandle] = None
        self.reconnect_timer: Optional[TimerHandle] = None
        self.backoff = backoff
        self.last_heard = 0.0
        self.messages_heard = 0
        self.hold_expirations = 0
        self.reconnect_attempts = 0

    def __repr__(self) -> str:
        return (
            f"PeerLiveness(peer={self.peer!r}, last_heard={self.last_heard}, "
            f"hold_expirations={self.hold_expirations})"
        )


class SessionLivenessManager:
    """Hold/restart/reconnect timers for a route server's sessions."""

    def __init__(
        self,
        server: RouteServer,
        # Anything with the Simulator scheduling surface (now /
        # schedule / schedule_in / schedule_every) works — the
        # event-loop runtime passes its TimerWheel here.
        clock: "Simulator",
        config: LivenessConfig = LivenessConfig(),
        reconnect_probe: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._server = server
        self._clock = clock
        self.config = config
        #: asked before each reconnection attempt whether the peer is
        #: reachable again; the fault injector overrides this to keep a
        #: crashed peer down for a scripted interval
        self.reconnect_probe = reconnect_probe or (lambda peer: True)
        self._peers: Dict[str, PeerLiveness] = {}

    # -- registration -----------------------------------------------------------

    def watch(self, peer: str) -> PeerLiveness:
        """Start liveness supervision for one peer."""
        record = self._peers.get(peer)
        if record is not None:
            return record
        record = PeerLiveness(peer, self.config.backoff_initial)
        record.last_heard = self._clock.now
        self._peers[peer] = record
        session = self._server.session(peer)
        if self.config.graceful_restart:
            self._server.set_graceful_restart(peer, True)
        session.on_state_change(self._on_state_change)
        if session.is_established:
            self._arm_hold(record)
        return record

    def watch_all(self) -> None:
        for peer in sorted(self._server.peers()):
            self.watch(peer)

    def peer_state(self, peer: str) -> PeerLiveness:
        return self._peers[peer]

    def watched(self) -> Dict[str, PeerLiveness]:
        return dict(self._peers)

    # -- liveness input -----------------------------------------------------------

    def heard_from(self, peer: str) -> None:
        """A KEEPALIVE or UPDATE arrived: the peer is alive, re-arm hold."""
        record = self._peers.get(peer)
        if record is None:
            return
        record.last_heard = self._clock.now
        record.messages_heard += 1
        if self._server.session(peer).is_established:
            self._arm_hold(record)

    # -- timer machinery -----------------------------------------------------------

    def _arm_hold(self, record: PeerLiveness) -> None:
        if record.hold_timer is not None:
            record.hold_timer.cancel()
        record.hold_timer = self._clock.schedule_in(
            self.config.hold_time, lambda: self._hold_expired(record.peer)
        )

    def _hold_expired(self, record_peer: str) -> None:
        record = self._peers[record_peer]
        session = self._server.session(record_peer)
        if not session.is_established:
            return
        record.hold_expirations += 1
        session.fail()  # _on_state_change arms restart + reconnect timers

    def _on_state_change(self, session: BGPSession, state: SessionState) -> None:
        record = self._peers.get(session.peer)
        if record is None:
            return
        if state is SessionState.ESTABLISHED:
            record.backoff = self.config.backoff_initial
            self._cancel(record, "restart_timer")
            self._cancel(record, "reconnect_timer")
            self._arm_hold(record)
        elif state is SessionState.FAILED:
            self._cancel(record, "hold_timer")
            if record.restart_timer is None or not record.restart_timer.active:
                record.restart_timer = self._clock.schedule_in(
                    self.config.restart_time,
                    lambda: self._restart_expired(session.peer),
                )
            if record.reconnect_timer is None or not record.reconnect_timer.active:
                self._schedule_reconnect(record)
        elif state is SessionState.IDLE:
            # Administrative shutdown: stop all supervision until the
            # operator brings the session back.
            self._cancel(record, "hold_timer")
            self._cancel(record, "restart_timer")
            self._cancel(record, "reconnect_timer")

    def _cancel(self, record: PeerLiveness, field: str) -> None:
        handle: Optional[TimerHandle] = getattr(record, field)
        if handle is not None:
            handle.cancel()
            setattr(record, field, None)

    # -- reconnection ---------------------------------------------------------------

    def _schedule_reconnect(self, record: PeerLiveness) -> None:
        delay = record.backoff
        record.backoff = min(
            record.backoff * self.config.backoff_multiplier, self.config.backoff_max
        )
        record.reconnect_timer = self._clock.schedule_in(
            delay, lambda: self._attempt_reconnect(record.peer)
        )

    def _attempt_reconnect(self, peer: str) -> None:
        record = self._peers[peer]
        session = self._server.session(peer)
        if session.state is not SessionState.FAILED:
            return
        record.reconnect_attempts += 1
        if self.reconnect_probe(peer):
            session.establish()
        else:
            self._schedule_reconnect(record)

    def _restart_expired(self, peer: str) -> None:
        """RFC 4724 restart timer ran out: reap whatever is still stale."""
        session = self._server.session(peer)
        if not session.is_established:
            self._server.sweep_stale(peer)

    def __repr__(self) -> str:
        return f"SessionLivenessManager(watched={len(self._peers)})"
