"""Health-report data model for the SDX controller.

``controller.ops.health()`` aggregates what the resilience layer knows —
session states, quarantined participants, damped prefixes, per-peer
update-error counters — into one :class:`HealthReport`.  Operators of
real exchanges page on exactly this breakdown: *which* peer is flapping,
*whose* policy is broken, *what* traffic degraded to BGP defaults.

This module holds only plain data types so that every other layer can
import it without cycles.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Tuple

__all__ = ["HealthReport", "PeerErrorCounters", "QuarantineRecord"]


class QuarantineRecord(NamedTuple):
    """Why one participant was degraded to BGP-default forwarding."""

    participant: str
    error: str
    error_type: str
    compile_attempts: int = 1
    #: which defense quarantined them: "compile" (their policy failed to
    #: compile) or "guard" (their compiled policy misforwarded and the
    #: commit guard rolled the commit back)
    state: str = "compile"
    #: escalation counter — how many times this participant has been
    #: quarantined by the same defense (released-then-reoffended repeats)
    offenses: int = 1

    def __repr__(self) -> str:
        extra = f", {self.state}" + (
            f" x{self.offenses}" if self.offenses > 1 else ""
        )
        return (
            f"QuarantineRecord({self.participant!r}, "
            f"{self.error_type}: {self.error}{extra})"
        )


class PeerErrorCounters:
    """Per-peer RFC 7606 accounting: what went wrong on the update plane."""

    __slots__ = (
        "wire_errors",
        "validation_errors",
        "treat_as_withdraw",
        "session_resets",
        "last_error",
    )

    def __init__(self) -> None:
        self.wire_errors = 0
        self.validation_errors = 0
        self.treat_as_withdraw = 0
        self.session_resets = 0
        self.last_error: str = ""

    @property
    def total_errors(self) -> int:
        return self.wire_errors + self.validation_errors

    def snapshot(self) -> Mapping[str, int]:
        return {
            "wire_errors": self.wire_errors,
            "validation_errors": self.validation_errors,
            "treat_as_withdraw": self.treat_as_withdraw,
            "session_resets": self.session_resets,
        }

    def __repr__(self) -> str:
        return (
            f"PeerErrorCounters(wire={self.wire_errors}, "
            f"validation={self.validation_errors}, "
            f"treat_as_withdraw={self.treat_as_withdraw}, "
            f"resets={self.session_resets})"
        )


class HealthReport(NamedTuple):
    """One consistent snapshot of the exchange's operational state."""

    #: peer -> session state value ("established", "failed", ...)
    sessions: Mapping[str, str]
    #: participant -> why their policy is quarantined
    quarantined: Mapping[str, QuarantineRecord]
    #: (peer, prefix) pairs currently suppressed by flap damping
    damped: Tuple[Tuple[str, str], ...]
    #: peer -> number of stale (graceful-restart retained) routes
    stale_routes: Mapping[str, int]
    #: peer -> update-plane error counters
    update_errors: Mapping[str, Mapping[str, int]]
    #: prefixes currently served by fast-path override rules
    fast_path_prefixes: int
    #: total installed flow rules
    flow_rules: int
    #: lifetime resilience event counts (damping suppressions,
    #: quarantines, session transitions), sourced from telemetry
    events: Mapping[str, int] = {}
    #: the commit guard's bounded incident log (GuardIncident tuples:
    #: rollbacks with counterexamples, probe failures), oldest first
    incidents: Tuple = ()
    #: per-participant admission state (rejections, active backoff),
    #: only participants with any rejection history appear
    admission: Mapping[str, Mapping] = {}
    #: control-plane runtime state: ``{"mode": "inline"}`` or the
    #: event-loop runtime's queue depths / peak / rejection counters
    runtime: Mapping[str, object] = {}

    @property
    def degraded(self) -> bool:
        """True when any participant is not getting full service."""
        return (
            bool(self.quarantined)
            or bool(self.damped)
            or any(state != "established" for state in self.sessions.values())
        )

    def summary(self) -> str:
        """A one-paragraph operator-facing digest."""
        down = sorted(
            peer for peer, state in self.sessions.items() if state != "established"
        )
        parts = [
            f"{len(self.sessions)} sessions ({len(self.sessions) - len(down)} up)",
            f"{len(self.quarantined)} quarantined",
            f"{len(self.damped)} damped prefixes",
            f"{self.flow_rules} flow rules",
        ]
        if down:
            parts.append("down: " + ", ".join(down))
        if self.quarantined:
            parts.append("quarantined: " + ", ".join(sorted(self.quarantined)))
        if self.incidents:
            parts.append(f"{len(self.incidents)} guard incidents")
        throttled = sorted(
            name
            for name, state in self.admission.items()
            if state.get("in_backoff")
        )
        if throttled:
            parts.append("throttled: " + ", ".join(throttled))
        return "; ".join(parts)
