"""Deterministic, seedable fault injection for the SDX.

Every fault the resilience layer defends against can be induced on
demand, reproducibly, from one seeded :class:`FaultInjector`:

* **session crashes** — fail a (chosen or random) peer session;
* **update corruption** — deterministic wire-level damage, either
  unsalvageable (bad marker -> discard) or attribute-only (salvageable
  -> RFC 7606 treat-as-withdraw);
* **policy poison** — install a participant policy whose compilation
  raises, exercising the controller's quarantine path;
* **commit sabotage** — abort the controller's fabric commit
  mid-transaction, exercising rollback;
* **commit corruption** — make a commit *succeed wrongly* (one policy
  segment silently blackholed), exercising the commit guard's sampled
  detection, auto-rollback, and quarantine (:mod:`repro.guard`);
* **guard fault points** — probe failure (guard must fail open),
  rollback failure (guard must fail closed), and a quarantine-release
  race (guard must re-catch the reoffender);
* **timer skew** — a clock view whose relative delays run fast or slow,
  exercising hold-timer/backoff robustness.

Chaos tests drive these from a single seed so every failure found in a
soak replays exactly.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.bgp.route_server import RouteServer
from repro.bgp.wire import HEADER_LENGTH
from repro.dataplane.flowtable import FlowRule
from repro.dataplane.reconcile import is_base_cookie
from repro.policy.classifier import Classifier
from repro.policy.language import Policy
from repro.sim.clock import Simulator, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = [
    "CommitSabotage",
    "FaultInjector",
    "PoisonPill",
    "PolicyPoisonError",
    "SkewedClock",
]


class PolicyPoisonError(RuntimeError):
    """Raised by a poisoned policy's compile()."""


class CommitSabotage(RuntimeError):
    """Raised inside the controller's fabric-commit transaction."""


class PoisonPill(Policy):
    """A policy AST whose compilation always raises.

    Stands in for every way a participant can ship broken policy code —
    the controller must quarantine exactly that participant, not crash.
    """

    def __init__(self, label: str = "poison") -> None:
        self.label = label

    def compile(self) -> Classifier:
        raise PolicyPoisonError(f"poisoned policy {self.label!r}")

    def eval(self, packet):
        raise PolicyPoisonError(f"poisoned policy {self.label!r}")

    def _key(self) -> Tuple:
        return (self.label,)

    def __repr__(self) -> str:
        return f"PoisonPill({self.label!r})"


class SkewedClock:
    """A clock view whose *relative* delays are scaled by ``factor``.

    Components handed a ``SkewedClock(sim, 2.0)`` arm their timers twice
    as late as intended; ``0.5`` twice as early.  The underlying
    simulator (and everything else scheduled on it) is unaffected —
    exactly the shape of real clock-rate skew between machines.
    """

    def __init__(self, clock: Simulator, factor: float) -> None:
        if factor <= 0:
            raise ValueError("skew factor must be positive")
        self._clock = clock
        self.factor = factor

    @property
    def now(self) -> float:
        return self._clock.now

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self._clock.schedule_in(delay * self.factor, callback)

    def schedule(self, at: float, callback: Callable[[], None]) -> TimerHandle:
        delay = max(at - self._clock.now, 0.0)
        return self.schedule_in(delay, callback)

    def schedule_every(self, interval: float, callback, start=None, until=None):
        return self._clock.schedule_every(
            interval * self.factor, callback, start=start, until=until
        )

    def __repr__(self) -> str:
        return f"SkewedClock(now={self.now}, factor={self.factor})"


class FaultInjector:
    """Seeded source of every injectable fault."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.log: List[Tuple[str, str]] = []

    def _note(self, kind: str, detail: str) -> None:
        self.log.append((kind, detail))

    # -- session faults ---------------------------------------------------------

    def crash_session(
        self, server: RouteServer, peer: Optional[str] = None
    ) -> str:
        """Fail one peering session (random peer when unspecified)."""
        if peer is None:
            peer = self.rng.choice(sorted(server.peers()))
        server.session(peer).fail()
        self._note("session-crash", peer)
        return peer

    # -- wire corruption ----------------------------------------------------------

    def corrupt_marker(self, data: bytes) -> bytes:
        """Unsalvageable corruption: the 16-byte marker is damaged.

        The decoder can only discard such a message (and count it).
        """
        self._note("corrupt-marker", f"{len(data)} bytes")
        return bytes([data[0] ^ 0xFF]) + data[1:]

    def corrupt_attributes(self, data: bytes) -> bytes:
        """Salvageable corruption: path attributes made unparseable.

        Inflates the first attribute's length octet past the attribute
        payload, so attribute parsing fails while the framing, withdrawn
        routes, and NLRI stay intact — the RFC 7606 treat-as-withdraw
        case.  Returns the input unchanged if the message has no
        attributes to corrupt.
        """
        body_start = HEADER_LENGTH
        if len(data) < body_start + 4:
            return data
        withdrawn_length = int.from_bytes(data[body_start : body_start + 2], "big")
        attrs_length_at = body_start + 2 + withdrawn_length
        if len(data) < attrs_length_at + 2:
            return data
        attributes_length = int.from_bytes(
            data[attrs_length_at : attrs_length_at + 2], "big"
        )
        if attributes_length < 3:
            return data
        # attribute layout: flags, type, length — inflate the length.
        length_octet_at = attrs_length_at + 2 + 2
        mutated = bytearray(data)
        mutated[length_octet_at] = 0xFF
        self._note("corrupt-attributes", f"{len(data)} bytes")
        return bytes(mutated)

    # -- policy poison --------------------------------------------------------------

    def poison_policy(
        self, controller: "SDXController", name: str, label: Optional[str] = None
    ) -> PoisonPill:
        """Install a compile-time-exploding outbound policy for ``name``."""
        from repro.core.participant import SDXPolicySet

        pill = PoisonPill(label or f"{name}-seed{self.seed}")
        controller.policy.set_policies(name, SDXPolicySet(outbound=pill), recompile=False)
        self._note("policy-poison", name)
        return pill

    # -- commit sabotage ---------------------------------------------------------------

    def sabotage_commit(self, controller: "SDXController", times: int = 1) -> None:
        """Make the next ``times`` fabric commits abort mid-transaction."""
        remaining = {"count": times}

        def hook(result) -> None:
            if remaining["count"] <= 0:
                controller.ops.remove_commit_hook(hook)
                return
            remaining["count"] -= 1
            if remaining["count"] <= 0:
                controller.ops.remove_commit_hook(hook)
            raise CommitSabotage(f"injected commit failure (seed {self.seed})")

        controller.ops.add_commit_hook(hook)
        self._note("commit-sabotage", f"times={times}")

    def corrupt_commit(
        self,
        controller: "SDXController",
        participant: Optional[str] = None,
        times: int = 1,
    ) -> None:
        """Make the next ``times`` commits install a *silently wrong* table.

        Where :meth:`sabotage_commit` makes the commit *fail loudly*
        (exercising rollback), this makes it *succeed wrongly*: inside
        the transaction, every rule of one participant's policy segment
        is replaced with an action-less (drop) copy — same cookie, same
        match, same priority, so nothing structural looks off and only
        behavioural verification (the commit guard's sampled probes) can
        tell.  ``participant`` pins the victim segment; by default the
        first policy segment in the table is hit.

        Corruption is remove + reinstall, never in-place mutation of
        rule fields — the transaction checkpoint snapshots membership
        and priorities, so only membership-level damage rolls back
        byte-exactly.
        """
        remaining = {"count": times}

        def hook(result) -> None:
            if remaining["count"] <= 0:
                controller.ops.remove_commit_hook(hook)
                return
            table = controller.switch.table
            victims = [
                rule
                for rule in table
                if is_base_cookie(rule.cookie)
                and len(rule.cookie) >= 3
                and rule.cookie[1] == "policy"
                and (participant is None or rule.cookie[2] == participant)
                and rule.actions
            ]
            if not victims:
                return  # no such segment this commit; stay armed
            remaining["count"] -= 1
            if remaining["count"] <= 0:
                controller.ops.remove_commit_hook(hook)
            victim_cookie = victims[0].cookie
            for rule in victims:
                if rule.cookie != victim_cookie:
                    continue
                table.remove(rule)
                table.install(
                    FlowRule(
                        rule.priority,
                        rule.match,
                        (),
                        cookie=rule.cookie,
                        table=rule.table,
                        goto=rule.goto,
                    )
                )
            self._note("commit-corruption", repr(victim_cookie))

        controller.ops.add_commit_hook(hook)

    # -- guarded-commit fault points ---------------------------------------------------

    def _guard_of(self, controller: "SDXController"):
        guard = controller.guard
        if guard is None:
            raise ValueError(
                "controller has no commit guard attached "
                "(construct with SDXController(config, guard=GuardConfig(...)))"
            )
        return guard

    def fail_probe(self, controller: "SDXController", times: int = 1) -> None:
        """Make the next ``times`` guarded-commit probe passes raise.

        Exercises the guard's fail-open path: the commit must stand and
        a ``probe-failure`` incident must appear in ``ops.health()``.
        """
        self._guard_of(controller).arm_fault("probe", times)
        self._note("probe-failure", f"times={times}")

    def fail_rollback(self, controller: "SDXController", times: int = 1) -> None:
        """Make the next ``times`` guard recoveries report a dirty rollback.

        Exercises the guard's fail-closed path:
        :class:`~repro.guard.commits.RollbackFailure` must propagate and
        a ``rollback-failure`` incident must be recorded.
        """
        self._guard_of(controller).arm_fault("rollback", times)
        self._note("rollback-failure", f"times={times}")

    def race_quarantine_release(
        self, controller: "SDXController", times: int = 1
    ) -> None:
        """Release the guard's next ``times`` quarantines immediately.

        Models an operator (or automation) lifting the quarantine while
        the guard is still mid-recovery — the offending policy stays
        installed and will recompile, so the guard must catch it again
        on the next commit with an escalated offense count.
        """
        self._guard_of(controller).arm_fault("release", times)
        self._note("quarantine-release-race", f"times={times}")

    # -- timer skew ----------------------------------------------------------------------

    def skew_clock(self, clock: Simulator, factor: Optional[float] = None) -> SkewedClock:
        """A skewed view of ``clock``; random factor in [0.5, 2.0] by default."""
        if factor is None:
            factor = self.rng.uniform(0.5, 2.0)
        self._note("timer-skew", f"factor={factor:.3f}")
        return SkewedClock(clock, factor)

    def __repr__(self) -> str:
        return f"FaultInjector(seed={self.seed}, injected={len(self.log)})"
