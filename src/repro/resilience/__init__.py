"""The SDX resilience layer.

The paper's correctness story — "the data plane stays in sync with BGP"
(Figure 5a) — is only meaningful if the exchange degrades sanely
*during* failures.  This package supplies the machinery:

* :mod:`~repro.resilience.liveness` — hold/keepalive timers, backoff
  reconnection, graceful restart (RFC 4724);
* :mod:`~repro.resilience.damping` — route-flap damping (RFC 2439) in
  front of the fast-path compiler;
* :mod:`~repro.resilience.protection` — revised update error handling
  (RFC 7606): treat-as-withdraw, per-peer error counters, threshold
  session resets;
* :mod:`~repro.resilience.faults` — a deterministic, seedable
  fault-injection harness;
* :mod:`~repro.resilience.health` — the controller's health-report data
  model.

:class:`ResilienceCoordinator` wires the first three onto a live
:class:`~repro.core.controller.SDXController`; the controller exposes it
via ``controller.enable_resilience(...)`` and surfaces the aggregate
state through ``controller.ops.health()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.bgp.route_server import BestPathChange
from repro.netutils.ip import IPv4Prefix
from repro.resilience.damping import DampingConfig, FlapDamper
from repro.resilience.faults import (
    CommitSabotage,
    FaultInjector,
    PoisonPill,
    PolicyPoisonError,
    SkewedClock,
)
from repro.resilience.health import HealthReport, PeerErrorCounters, QuarantineRecord
from repro.resilience.liveness import (
    LivenessConfig,
    PeerLiveness,
    SessionLivenessManager,
)
from repro.resilience.protection import ProtectionConfig, UpdateGuard, salvage_update
from repro.sim.clock import Simulator, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.messages import BGPUpdate
    from repro.core.controller import SDXController

__all__ = [
    "CommitSabotage",
    "DampingConfig",
    "FaultInjector",
    "FlapDamper",
    "HealthReport",
    "LivenessConfig",
    "PeerErrorCounters",
    "PeerLiveness",
    "PoisonPill",
    "PolicyPoisonError",
    "ProtectionConfig",
    "QuarantineRecord",
    "ResilienceCoordinator",
    "SessionLivenessManager",
    "SkewedClock",
    "UpdateGuard",
    "salvage_update",
]


class ResilienceCoordinator:
    """Liveness + damping + update protection wired onto one controller.

    The coordinator intercepts the controller's update stream: updates
    are validated by the :class:`UpdateGuard`, flap penalties are
    recorded per (peer, prefix), and best-path changes for suppressed
    prefixes are withheld from the fast-path engine until their penalty
    decays — at which point a single catch-up recompilation is
    scheduled on the clock.
    """

    def __init__(
        self,
        controller: "SDXController",
        # Simulator or anything duck-typing its scheduling surface —
        # under REPRO_RUNTIME=eventloop the controller passes the
        # runtime's TimerWheel so all timers share one virtual clock.
        clock: Optional[Simulator] = None,
        liveness: Optional[LivenessConfig] = None,
        damping: Optional[DampingConfig] = None,
        protection: Optional[ProtectionConfig] = None,
        reconnect_probe: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.controller = controller
        self.clock = clock if clock is not None else Simulator()
        server = controller.route_server
        self.guard = UpdateGuard(
            server, protection or ProtectionConfig(), on_message=self._heard
        )
        self.damper = FlapDamper(self.clock, damping or DampingConfig())
        self.liveness = SessionLivenessManager(
            server, self.clock, liveness or LivenessConfig(), reconnect_probe
        )
        self.liveness.watch_all()
        self._refresh_timers: Dict[IPv4Prefix, TimerHandle] = {}
        #: best-path changes withheld from the fast path by damping
        self.suppressed_changes = 0
        registry = getattr(controller, "telemetry", None)
        self._m_suppressed = (
            registry.counter(
                "sdx_damping_suppressed_total",
                "Best-path changes withheld from the fast path by flap damping",
            )
            if registry is not None
            else None
        )

    # -- update-plane entry points ------------------------------------------------

    def process_update(self, update: "BGPUpdate") -> List[BestPathChange]:
        """Record flap penalties, then validate and apply the update."""
        self._record_flaps(update)
        return self.guard.process_update(update)

    def process_wire(
        self, peer: str, data: bytes, time: float = 0.0
    ) -> List[BestPathChange]:
        """Decode and apply one wire message (malformed bytes never raise)."""
        return self.guard.process_wire(peer, data, time)

    def end_of_rib(self, peer: str) -> List[BestPathChange]:
        """Graceful-restart End-of-RIB: sweep routes the peer dropped."""
        return self.controller.route_server.end_of_rib(peer)

    def _heard(self, peer: str) -> None:
        self.liveness.heard_from(peer)

    def _record_flaps(self, update: "BGPUpdate") -> None:
        server = self.controller.route_server
        peer = update.peer
        for withdrawal in update.withdrawn:
            if server.route_from(peer, withdrawal.prefix) is not None:
                self.damper.record_withdraw(peer, withdrawal.prefix)
        for announcement in update.announced:
            prior = server.route_from(peer, announcement.prefix)
            if prior is not None:
                if prior.attributes != announcement.attributes:
                    self.damper.record_attribute_change(peer, announcement.prefix)
            elif self.damper.flap_count(peer, announcement.prefix):
                self.damper.record_readvertise(peer, announcement.prefix)

    # -- fast-path gating -----------------------------------------------------------

    def filter_changes(self, changes: List[BestPathChange]) -> List[BestPathChange]:
        """Drop changes for damped prefixes; schedule their catch-up."""
        kept: List[BestPathChange] = []
        for change in changes:
            if self.damper.is_prefix_suppressed(change.prefix):
                self.suppressed_changes += 1
                if self._m_suppressed is not None:
                    self._m_suppressed.inc()
                self._schedule_refresh(change.prefix)
            else:
                kept.append(change)
        return kept

    def _schedule_refresh(self, prefix: IPv4Prefix) -> None:
        timer = self._refresh_timers.get(prefix)
        if timer is not None and timer.active:
            return
        delay = self.damper.prefix_reuse_delay(prefix)
        self._refresh_timers[prefix] = self.clock.schedule_in(
            delay, lambda: self._reuse_check(prefix)
        )

    def _reuse_check(self, prefix: IPv4Prefix) -> None:
        if self.damper.is_prefix_suppressed(prefix):
            # Penalty grew while we slept (the route kept flapping).
            self._refresh_timers.pop(prefix, None)
            self._schedule_refresh(prefix)
            return
        self._refresh_timers.pop(prefix, None)
        self.controller.refresh_prefix(prefix)

    # -- reporting ---------------------------------------------------------------------

    def damped_routes(self):
        """(peer, prefix) pairs currently suppressed, sorted."""
        return self.damper.suppressed_routes()

    def __repr__(self) -> str:
        return (
            f"ResilienceCoordinator(clock={self.clock.now}, "
            f"damped={len(self.damper.suppressed_routes())})"
        )
