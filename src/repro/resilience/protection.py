"""RFC 7606-style revised error handling for the update plane.

A single malformed UPDATE must not take down the exchange.  The
pre-7606 BGP rule — tear the session down on any error — turns one
corrupt announcement into a full withdraw/re-announce storm for every
prefix the peer carries.  :class:`UpdateGuard` sits between the wire (or
the in-memory update stream) and the :class:`~repro.bgp.route_server.RouteServer`
and applies the revised hierarchy:

* **treat-as-withdraw** — when the NLRI is recoverable but the
  attributes are not (or fail semantic validation), the affected
  prefixes are withdrawn instead of the session being reset;
* **discard** — messages too mangled to salvage are counted and dropped;
* **session reset** — only past a per-peer error threshold does the
  guard declare the peer broken and fail the session (which, with
  graceful restart, still avoids the storm).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.route_server import BestPathChange, RouteServer
from repro.bgp.wire import (
    HEADER_LENGTH,
    KeepaliveMessage,
    MessageType,
    WireError,
    _decode_header,
    _decode_prefixes,
    decode_message,
)
from repro.resilience.health import PeerErrorCounters

__all__ = ["ProtectionConfig", "UpdateGuard", "salvage_update"]


class ProtectionConfig(NamedTuple):
    """Error-handling thresholds and optional semantic checks."""

    #: errors (wire + validation) per session before the peer is failed
    error_threshold: int = 8
    #: reject announcements of the default route (0.0.0.0/0)
    reject_default_route: bool = True
    #: reject announcements with an empty AS_PATH
    reject_empty_as_path: bool = True
    #: reject a zero next-hop
    reject_zero_next_hop: bool = True
    #: require the leftmost AS_PATH ASN to match the peer's registered
    #: ASN (off by default: route servers legitimately see transparent
    #: peers that do not prepend)
    enforce_first_asn: bool = False


def salvage_update(data: bytes, peer: str, time: float = 0.0) -> Optional[BGPUpdate]:
    """Best-effort recovery of an UPDATE whose attributes are malformed.

    RFC 7606's key observation: the withdrawn-routes and NLRI fields
    frame independently of the path attributes, so a message whose
    attributes fail to parse can still be handled by *treating every
    announced prefix as withdrawn*.  Returns ``None`` when even the
    framing or prefix fields are unusable (discard is then the only
    option).
    """
    try:
        header = _decode_header(data)
        if header.type is not MessageType.UPDATE or len(data) < header.length:
            return None
        body = data[HEADER_LENGTH : header.length]
        if len(body) < 2:
            return None
        (withdrawn_length,) = struct.unpack_from("!H", body, 0)
        cursor = 2
        if cursor + withdrawn_length > len(body):
            return None
        withdrawn = _decode_prefixes(body[cursor : cursor + withdrawn_length])
        cursor += withdrawn_length
        if cursor + 2 > len(body):
            return None
        (attributes_length,) = struct.unpack_from("!H", body, cursor)
        cursor += 2
        if cursor + attributes_length > len(body):
            return None
        nlri = _decode_prefixes(body[cursor + attributes_length :])
    except WireError:
        return None
    prefixes = list(withdrawn) + list(nlri)
    if not prefixes:
        return None
    return BGPUpdate(
        peer, withdrawn=[Withdrawal(prefix) for prefix in prefixes], time=time
    )


class UpdateGuard:
    """Validating front-end to a route server's update processing."""

    def __init__(
        self,
        server: RouteServer,
        config: ProtectionConfig = ProtectionConfig(),
        on_message: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._server = server
        self.config = config
        #: called with the peer name for every successfully decoded
        #: message — the liveness manager's "the peer is alive" signal
        self.on_message = on_message
        self._counters: Dict[str, PeerErrorCounters] = {}
        self._since_reset: Dict[str, int] = {}

    def counters(self, peer: str) -> PeerErrorCounters:
        counters = self._counters.get(peer)
        if counters is None:
            counters = self._counters[peer] = PeerErrorCounters()
        return counters

    def all_counters(self) -> Dict[str, PeerErrorCounters]:
        return dict(self._counters)

    # -- wire input ------------------------------------------------------------

    def process_wire(
        self, peer: str, data: bytes, time: float = 0.0
    ) -> List[BestPathChange]:
        """Decode and apply one wire message from ``peer``.

        Malformed bytes never raise: they are counted, salvaged into
        treat-as-withdraw when possible, and eventually — past the
        threshold — reset the session.
        """
        try:
            message, _ = decode_message(data, peer=peer, time=time)
        except WireError as exc:
            counters = self.counters(peer)
            counters.wire_errors += 1
            counters.last_error = str(exc)
            salvaged = salvage_update(data, peer, time)
            changes: List[BestPathChange] = []
            if salvaged is not None and self._server.session(peer).is_established:
                counters.treat_as_withdraw += len(salvaged.withdrawn)
                changes = self._server.process_update(salvaged)
            self._record_error(peer)
            return changes
        if self.on_message is not None:
            self.on_message(peer)
        if isinstance(message, BGPUpdate):
            return self.process_update(message)
        if isinstance(message, KeepaliveMessage):
            return []
        return []

    # -- semantic validation ------------------------------------------------------

    def process_update(self, update: BGPUpdate) -> List[BestPathChange]:
        """Validate and apply one in-memory UPDATE.

        Announcements failing validation are treated as withdrawals of
        the same prefix; the rest of the update is applied normally.
        """
        peer = update.peer
        session = self._server.session(peer)
        counters = self.counters(peer)
        if not session.is_established:
            counters.validation_errors += 1
            counters.last_error = f"update from peer in state {session.state.value}"
            self._record_error(peer)
            return []
        announced: List[Announcement] = []
        withdrawn: List[Withdrawal] = list(update.withdrawn)
        for announcement in update.announced:
            problem = self._validate(peer, announcement)
            if problem is None:
                announced.append(announcement)
                continue
            counters.validation_errors += 1
            counters.treat_as_withdraw += 1
            counters.last_error = f"{announcement.prefix}: {problem}"
            withdrawn.append(Withdrawal(announcement.prefix))
            self._record_error(peer)
        if not session.is_established:
            # The error threshold tripped mid-update: drop the rest.
            return []
        cleaned = BGPUpdate(
            peer, announced=announced, withdrawn=withdrawn, time=update.time
        )
        if self.on_message is not None:
            self.on_message(peer)
        return self._server.process_update(cleaned)

    def _validate(self, peer: str, announcement: Announcement) -> Optional[str]:
        """None when the announcement is acceptable; else a diagnosis."""
        config = self.config
        if config.reject_default_route and announcement.prefix.length == 0:
            return "default route announcement"
        attributes = announcement.attributes
        as_path = tuple(attributes.as_path.asns)
        if config.reject_empty_as_path and not as_path:
            return "empty AS_PATH"
        if config.reject_zero_next_hop and int(attributes.next_hop) == 0:
            return "zero NEXT_HOP"
        if config.enforce_first_asn and as_path:
            expected = self._server.peer_asn(peer)
            if expected is not None and as_path[0] != expected:
                return f"first AS {as_path[0]} is not peer AS {expected}"
        return None

    # -- threshold bookkeeping ------------------------------------------------------

    def _record_error(self, peer: str) -> None:
        count = self._since_reset.get(peer, 0) + 1
        if count >= self.config.error_threshold:
            session = self._server.session(peer)
            counters = self.counters(peer)
            counters.session_resets += 1
            counters.last_error += " (error threshold reached: session reset)"
            self._since_reset[peer] = 0
            if not session.is_down:
                session.fail()
        else:
            self._since_reset[peer] = count

    def __repr__(self) -> str:
        return f"UpdateGuard(peers={len(self._counters)})"
