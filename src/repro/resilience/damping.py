"""RFC 2439-style route-flap damping.

A pathologically flapping route can otherwise starve the two-stage
compiler: every withdraw/re-announce pair triggers a fast-path
recompilation (Section 4.3.2), and a tight flap loop turns the SDX into
a recompilation treadmill.  :class:`FlapDamper` keeps an exponentially
decaying penalty per (peer, prefix); once the penalty crosses the
suppress threshold the prefix's best-path changes are withheld from the
fast path until the penalty decays below the reuse threshold.

The damper only gates *recompilation* — the RIB itself stays exact, so
when a prefix is released one recompilation brings the data plane back
in sync with BGP.
"""

from __future__ import annotations

import math
from typing import Dict, NamedTuple, Optional, Set, Tuple

from repro.netutils.ip import IPv4Prefix

__all__ = ["DampingConfig", "FlapDamper", "FlapRecord"]

#: Smallest record count at which the amortized eviction sweep runs.
_SWEEP_MIN = 64


class DampingConfig(NamedTuple):
    """RFC 2439 parameters (defaults mirror common router vendor values)."""

    withdraw_penalty: float = 1000.0
    readvertise_penalty: float = 500.0
    attribute_penalty: float = 500.0
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    #: seconds for the penalty to halve
    half_life: float = 900.0
    #: ceiling on the accumulated penalty (bounds suppression time)
    max_penalty: float = 12000.0


class FlapRecord:
    """Mutable damping state for one (peer, prefix) route."""

    __slots__ = ("penalty", "last_updated", "suppressed", "flaps")

    def __init__(self, now: float) -> None:
        self.penalty = 0.0
        self.last_updated = now
        self.suppressed = False
        self.flaps = 0

    def decay(self, now: float, half_life: float) -> None:
        elapsed = now - self.last_updated
        if elapsed > 0:
            self.penalty *= 0.5 ** (elapsed / half_life)
            self.last_updated = now


class FlapDamper:
    """Per-route penalty accounting in front of the fast-path engine."""

    def __init__(self, clock, config: DampingConfig = DampingConfig()) -> None:
        if config.reuse_threshold >= config.suppress_threshold:
            raise ValueError("reuse threshold must sit below suppress threshold")
        self._clock = clock
        self.config = config
        self._records: Dict[Tuple[str, IPv4Prefix], FlapRecord] = {}
        # Per-prefix index of peers whose route is (or recently was)
        # suppressed: the fast-path gate asks "is this prefix damped?"
        # on every best-path change, and scanning every record ever
        # flapped made that O(all records).  The index may hold entries
        # whose penalty has since decayed — they are cleared lazily by
        # ``is_suppressed`` — but never misses a suppressed route.
        self._suppressed: Dict[IPv4Prefix, Set[str]] = {}
        # Records whose penalty decayed below this floor carry no
        # information (they cannot influence suppression before being
        # re-penalized) and are evicted so the table tracks only routes
        # that flapped *recently*, not every route that ever flapped.
        self._evict_floor = config.reuse_threshold / 2.0
        self._sweep_at = _SWEEP_MIN

    # -- recording flap events ------------------------------------------------

    def record_withdraw(self, peer: str, prefix: "IPv4Prefix | str") -> bool:
        return self._penalize(peer, prefix, self.config.withdraw_penalty)

    def record_readvertise(self, peer: str, prefix: "IPv4Prefix | str") -> bool:
        return self._penalize(peer, prefix, self.config.readvertise_penalty)

    def record_attribute_change(self, peer: str, prefix: "IPv4Prefix | str") -> bool:
        return self._penalize(peer, prefix, self.config.attribute_penalty)

    def _penalize(self, peer: str, prefix: "IPv4Prefix | str", amount: float) -> bool:
        """Add penalty; returns True when the route is now suppressed."""
        key = (peer, IPv4Prefix(prefix))
        now = self._clock.now
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = FlapRecord(now)
            if len(self._records) >= self._sweep_at:
                self._sweep(now)
        record.decay(now, self.config.half_life)
        record.penalty = min(record.penalty + amount, self.config.max_penalty)
        record.flaps += 1
        if record.penalty >= self.config.suppress_threshold:
            record.suppressed = True
            self._suppressed.setdefault(key[1], set()).add(peer)
        return record.suppressed

    def _unsuppress(self, key: Tuple[str, IPv4Prefix], record: FlapRecord) -> None:
        record.suppressed = False
        peers = self._suppressed.get(key[1])
        if peers is not None:
            peers.discard(key[0])
            if not peers:
                del self._suppressed[key[1]]

    def _maybe_evict(self, key: Tuple[str, IPv4Prefix], record: FlapRecord) -> None:
        """Drop a decayed-cold record (must not be suppressed)."""
        if not record.suppressed and record.penalty < self._evict_floor:
            self._records.pop(key, None)

    def _sweep(self, now: float) -> None:
        """Evict every decayed-cold record; amortized O(1) per new route.

        Runs when the table has doubled since the last sweep, so a long
        churn replay holds only the routes still carrying penalty — the
        table is bounded by ~2x the *warm* route count, not by every
        (peer, prefix) that ever flapped.
        """
        for key in list(self._records):
            record = self._records[key]
            record.decay(now, self.config.half_life)
            if record.suppressed and record.penalty <= self.config.reuse_threshold:
                self._unsuppress(key, record)
            self._maybe_evict(key, record)
        self._sweep_at = max(_SWEEP_MIN, 2 * len(self._records))

    # -- queries ---------------------------------------------------------------

    def penalty(self, peer: str, prefix: "IPv4Prefix | str") -> float:
        key = (peer, IPv4Prefix(prefix))
        record = self._records.get(key)
        if record is None:
            return 0.0
        record.decay(self._clock.now, self.config.half_life)
        value = record.penalty
        self._maybe_evict(key, record)
        return value

    def is_suppressed(self, peer: str, prefix: "IPv4Prefix | str") -> bool:
        """Current suppression verdict for one route (decays lazily)."""
        key = (peer, IPv4Prefix(prefix))
        record = self._records.get(key)
        if record is None:
            return False
        record.decay(self._clock.now, self.config.half_life)
        if record.suppressed and record.penalty <= self.config.reuse_threshold:
            self._unsuppress(key, record)
        verdict = record.suppressed
        self._maybe_evict(key, record)
        return verdict

    def is_prefix_suppressed(self, prefix: "IPv4Prefix | str") -> bool:
        """True when any peer's route for ``prefix`` is suppressed.

        The fast path recompiles per *prefix*, so one badly flapping
        announcer is enough to withhold that prefix's churn.  The check
        walks only the prefix's suppressed-peer index — O(peers that
        suppressed this prefix), not O(every record ever created).
        """
        prefix = IPv4Prefix(prefix)
        return any(
            self.is_suppressed(peer, prefix)
            for peer in sorted(self._suppressed.get(prefix, ()))
        )

    def reuse_delay(self, peer: str, prefix: "IPv4Prefix | str") -> float:
        """Seconds until this route's penalty decays to the reuse threshold."""
        penalty = self.penalty(peer, prefix)
        if penalty <= self.config.reuse_threshold:
            return 0.0
        # A hair of slack so a timer armed for exactly this delay lands
        # at-or-below the threshold despite floating-point decay error.
        return (
            self.config.half_life * math.log2(penalty / self.config.reuse_threshold)
            + 0.001
        )

    def prefix_reuse_delay(self, prefix: "IPv4Prefix | str") -> float:
        """Seconds until no peer's route for ``prefix`` is suppressed."""
        prefix = IPv4Prefix(prefix)
        return max(
            (
                self.reuse_delay(peer, prefix)
                for peer in sorted(self._suppressed.get(prefix, ()))
                if self.is_suppressed(peer, prefix)
            ),
            default=0.0,
        )

    def suppressed_routes(self) -> Tuple[Tuple[str, IPv4Prefix], ...]:
        """Every (peer, prefix) currently suppressed, sorted."""
        candidates = [
            (peer, prefix)
            for prefix, peers in list(self._suppressed.items())
            for peer in sorted(peers)
        ]
        return tuple(
            sorted(
                (key for key in candidates if self.is_suppressed(*key)),
                key=lambda key: (key[0], str(key[1])),
            )
        )

    def flap_count(self, peer: str, prefix: "IPv4Prefix | str") -> int:
        record = self._records.get((peer, IPv4Prefix(prefix)))
        return record.flaps if record is not None else 0

    def forget(self, peer: str, prefix: Optional["IPv4Prefix | str"] = None) -> None:
        """Drop damping state for a route, or a peer's every route."""
        if prefix is not None:
            keys = [(peer, IPv4Prefix(prefix))]
        else:
            keys = [key for key in self._records if key[0] == peer]
        for key in keys:
            record = self._records.pop(key, None)
            if record is not None and record.suppressed:
                self._unsuppress(key, record)

    def __repr__(self) -> str:
        return (
            f"FlapDamper(tracked={len(self._records)}, "
            f"suppressed={len(self.suppressed_routes())})"
        )
