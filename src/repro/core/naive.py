"""The naive (per-prefix) compilation strategy — the §4.2 strawman.

Section 4.2 motivates the VNH/VMAC design by what happens without it:
"augmenting each participant's policy with the BGP-learned prefixes
could cause an explosion in the size of the final policy ... a naive
compilation algorithm could easily lead to millions of forwarding
rules, while even the most high-end SDN switch hardware can barely
hold half a million".

This module implements that naive algorithm faithfully so the claim
can be measured: BGP reachability filters become one ``dstip`` match
per prefix, default forwarding becomes one rule per (prefix,
best-next-hop), and delivery one rule per (announcer, prefix).  The
:func:`compile_naive` pipeline mirrors
:class:`~repro.core.compiler.SDXCompiler` stage for stage, differing
only in the encoding, so rule-count comparisons isolate exactly the
paper's optimization.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, NamedTuple, Optional

from repro.bgp.route_server import RouteServer
from repro.core.participant import SDXPolicySet
from repro.core.transforms import (
    concat_disjoint,
    isolate,
    rewrite_inbound_delivery,
)
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix
from repro.policy.analysis import with_fallback
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule, sequence_rule

__all__ = ["NaiveCompilationResult", "compile_naive"]


class NaiveCompilationResult(NamedTuple):
    """Outcome of a naive compilation (rule counts are the point)."""

    classifier: Classifier
    rules: int


def _prefix_filtered_outbound(
    classifier: Classifier,
    participants: FrozenSet[str],
    reachable,
) -> Classifier:
    """BGP-consistency filters as per-prefix dstip matches (no VMACs)."""
    rewritten: List[Rule] = []
    for rule in classifier.rules:
        if rule.is_drop:
            rewritten.append(rule)
            continue
        virtual = [a for a in rule.actions if a.output_port in participants]
        other = [a for a in rule.actions if a.output_port not in participants]
        if not virtual:
            rewritten.append(rule)
            continue
        constraint = rule.match.constraints.get("dstip")
        for action in virtual:
            for prefix in sorted(reachable(action.output_port)):
                if constraint is not None and not prefix.overlaps(constraint):
                    continue
                narrowed = prefix if constraint is None or constraint.contains(prefix) else constraint
                scoped = rule.match.without("dstip").restrict("dstip", narrowed)
                if scoped is not None:
                    rewritten.append(Rule(scoped, (action, *other)))
        if other:
            rewritten.append(Rule(rule.match, other))
    return Classifier(rewritten).optimized()


def compile_naive(
    config: IXPConfig,
    route_server: RouteServer,
    policies: Mapping[str, SDXPolicySet],
) -> NaiveCompilationResult:
    """Compile without prefix grouping: every filter names raw prefixes.

    Functionally equivalent to the optimized pipeline for unicast
    policies, but with data-plane state proportional to the number of
    *prefixes* rather than prefix *groups* — the scaling the paper's
    VMAC scheme exists to avoid.
    """
    participant_names = frozenset(config.participant_names())

    # Stage 1: per-participant policies with per-prefix BGP filters.
    stage1_blocks: List[Classifier] = []
    for participant in config.participants():
        policy_set = policies.get(participant.name)
        if policy_set is None or policy_set.outbound is None or participant.is_remote:
            continue
        raw = policy_set.outbound.compile()
        loc_rib = route_server.loc_rib(participant.name)
        cache: Dict[str, FrozenSet[IPv4Prefix]] = {}

        def reachable(target: str, _loc_rib=loc_rib, _cache=cache):
            found = _cache.get(target)
            if found is None:
                found = _loc_rib.prefixes_via(target)
                _cache[target] = found
            return found

        filtered = _prefix_filtered_outbound(raw, participant_names, reachable)
        sealed = with_fallback(filtered, Classifier())
        stage1_blocks.append(isolate(sealed, participant.port_ids))

    # Default forwarding: one rule per (prefix, top route), plus export
    # exceptions per excluded participant port; physical-MAC rules for
    # nothing — naive compilation routes *everything* by dstip.
    default_rules: List[Rule] = []
    for prefix in sorted(route_server.all_prefixes()):
        ranked = route_server.ranked_routes(prefix)
        if not ranked:
            continue
        top = ranked[0]
        if top.export_to is not None:
            for participant in config.participants():
                if participant.name == top.learned_from or participant.is_remote:
                    continue
                best = next(
                    (
                        r
                        for r in ranked
                        if r.learned_from != participant.name
                        and r.exported_to(participant.name)
                    ),
                    None,
                )
                if best is None or best is top:
                    continue
                for port in participant.ports:
                    default_rules.append(
                        Rule(
                            HeaderMatch(port=port.port_id, dstip=prefix),
                            (Action(port=best.learned_from),),
                        )
                    )
        default_rules.append(
            Rule(HeaderMatch(dstip=prefix), (Action(port=top.learned_from),))
        )
    stage1 = concat_disjoint(stage1_blocks + [Classifier(default_rules)])

    # Stage 2: inbound policies + per-prefix delivery.
    blocks: Dict[Any, Classifier] = {}
    for participant in config.participants():
        policy_set = policies.get(participant.name)
        inbound = (
            policy_set.inbound.compile()
            if policy_set is not None and policy_set.inbound is not None
            else Classifier()
        )
        delivery_rules: List[Rule] = []
        if not participant.is_remote:
            for prefix in sorted(route_server.prefixes_from(participant.name)):
                route = route_server.route_from(participant.name, prefix)
                port = participant.port_for_address(route.attributes.next_hop)
                if port is None:
                    continue
                delivery_rules.append(
                    Rule(
                        HeaderMatch(dstip=prefix),
                        (Action(port=port.port_id, dstmac=port.hardware),),
                    )
                )
        combined = with_fallback(
            rewrite_inbound_delivery(inbound, config), Classifier(delivery_rules)
        )
        block = isolate(combined, [participant.name])
        if len(block):
            blocks[participant.name] = block
    for port in config.physical_ports():
        blocks[port.port_id] = Classifier(
            [
                Rule(
                    HeaderMatch(port=port.port_id),
                    (Action(port=port.port_id, dstmac=port.hardware),),
                )
            ]
        )

    rules: List[Rule] = []
    for rule in stage1.rules:
        rules.extend(sequence_rule(rule, lambda action: blocks.get(action.output_port)))
    classifier = Classifier(rules).optimized()
    return NaiveCompilationResult(classifier=classifier, rules=len(classifier))
