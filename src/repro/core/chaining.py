"""Service chaining through middleboxes (the paper's Section 8 extension).

The paper closes by envisioning policies that steer traffic "through
middleboxes (and other cloud-hosted services) along the path between
source and destination, thereby enabling service chaining".  This
module implements that extension on top of the SDX compiler:

* a :class:`ServiceChain` names an ordered list of middlebox ports;
* participants forward into it like any target: ``match(...) >> fwd(chain)``;
* the compiler emits *continuation rules* — traffic re-entering the
  fabric from hop ``i``'s port flows to hop ``i+1`` — and, because the
  frames keep their VMAC tag through the chain, traffic returning from
  the final hop simply resumes default BGP forwarding (or an explicit
  ``exit`` target).

The data-plane counterpart is
:class:`repro.dataplane.appliance.MiddleboxAppliance`, a bump-in-the-
wire node that re-emits (possibly transformed) frames on its port.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ixp.topology import IXPConfig
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule

__all__ = ["ServiceChain", "chain_continuation_rules", "chain_entry_block", "validate_chains"]


class ServiceChain:
    """An ordered middlebox traversal, usable as a forwarding target.

    ``hops`` are physical SDX port ids hosting the middleboxes, in
    traversal order.  ``exit`` optionally names where traffic goes after
    the last hop — a participant (virtual switch) or a physical port;
    when omitted, traffic resumes its default BGP path, which works
    because the chain preserves the packet's VMAC tag end to end.
    """

    __slots__ = ("name", "hops", "exit")

    def __init__(self, name: str, hops: Iterable[str], exit: Optional[Any] = None) -> None:
        self.name = name
        self.hops: Tuple[str, ...] = tuple(hops)
        self.exit = exit
        if not self.hops:
            raise ValueError(f"service chain {name!r} needs at least one hop")
        if len(set(self.hops)) != len(self.hops):
            raise ValueError(f"service chain {name!r} repeats a hop")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceChain):
            return NotImplemented
        return (
            self.name == other.name
            and self.hops == other.hops
            and self.exit == other.exit
        )

    def __hash__(self) -> int:
        return hash(("ServiceChain", self.name, self.hops, self.exit))

    def __repr__(self) -> str:
        tail = f", exit={self.exit!r}" if self.exit is not None else ""
        return f"ServiceChain({self.name!r}, hops={list(self.hops)}{tail})"


def validate_chains(chains: Iterable[ServiceChain], config: IXPConfig) -> None:
    """Check hop ports exist and no port serves two chain positions.

    A middlebox port identifies its chain position on re-entry (the
    fabric cannot otherwise tell which chain a returning frame belongs
    to), so each port may appear in at most one chain, once.
    """
    seen: Dict[str, str] = {}
    port_ids = {port.port_id for port in config.physical_ports()}
    for chain in chains:
        for hop in chain.hops:
            if hop not in port_ids:
                raise ValueError(
                    f"service chain {chain.name!r}: unknown port {hop!r}"
                )
            owner = seen.get(hop)
            if owner is not None:
                raise ValueError(
                    f"port {hop!r} serves both chain {owner!r} and {chain.name!r}"
                )
            seen[hop] = chain.name


def chain_continuation_rules(chains: Iterable[ServiceChain]) -> List[Rule]:
    """First-stage rules moving returned traffic to the next chain hop.

    Frames re-entering from hop ``i``'s port are exactly the chain's
    in-flight traffic (the port hosts nothing else), so a bare port
    match suffices; the VMAC tag rides along untouched.  The final hop
    gets a rule only when the chain declares an explicit exit —
    otherwise returned traffic falls through to the shared default-
    forwarding block and resumes its BGP path.
    """
    rules: List[Rule] = []
    for chain in chains:
        for current, nxt in zip(chain.hops, chain.hops[1:]):
            rules.append(
                Rule(HeaderMatch(port=current), (Action(port=nxt),))
            )
        if chain.exit is not None:
            rules.append(
                Rule(HeaderMatch(port=chain.hops[-1]), (Action(port=chain.exit),))
            )
    return rules


def chain_entry_block(chain: ServiceChain) -> Classifier:
    """The second-stage block for ``fwd(chain)`` actions: enter hop one.

    No destination-MAC rewrite happens on the way into (or through) a
    chain — middleboxes tap promiscuously, and the preserved VMAC is
    what lets post-chain traffic resume default forwarding.
    """
    return Classifier(
        [Rule(HeaderMatch.ANY, (Action(port=chain.hops[0]),))]
    )
