"""Forwarding equivalence classes: prefix grouping and the MDS algorithm.

Section 4.2 reduces data-plane state by grouping prefixes that "share
the same forwarding behavior throughout the SDX fabric" into FECs, each
identified by one (VNH, VMAC) pair.  The computation runs in three
passes:

1. collect, for every outbound-policy forwarding action, the set of
   prefixes whose default behavior that action overrides (the *policy
   groups*);
2. fingerprint every affected prefix's BGP state — we use the ranked
   candidate-route fingerprint, which determines every participant's
   default next-hop and feasible next-hop set at once (a conservative
   refinement of the paper's "group by default next-hop" pass);
3. compute the Minimum Disjoint Subsets of the combined grouping —
   prefixes belong to the same FEC iff they appear in exactly the same
   policy groups *and* share a BGP fingerprint.

The MDS algorithm the paper leaves unspecified is implemented here two
ways: the polynomial *signature* algorithm (:func:`minimum_disjoint_subsets`)
used in production, and a naive pairwise-refinement version kept for
the ablation benchmark.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.vmac import VirtualNextHop, VirtualNextHopAllocator
from repro.netutils.ip import IPv4Prefix

__all__ = [
    "FECTable",
    "PrefixGroup",
    "compute_fec_table",
    "minimum_disjoint_subsets",
    "minimum_disjoint_subsets_naive",
]


def minimum_disjoint_subsets(
    sets: Sequence[FrozenSet],
) -> List[FrozenSet]:
    """Partition the union of ``sets`` into maximal behavior-equivalent groups.

    Two elements land in the same output group iff they are members of
    exactly the same input sets.  Runs in O(total membership) time by
    bucketing each element on its *signature* — the frozenset of input
    sets containing it.

    >>> groups = minimum_disjoint_subsets([frozenset("abc"), frozenset("abcd"),
    ...                                    frozenset("abd"), frozenset("c")])
    >>> sorted("".join(sorted(g)) for g in groups)
    ['ab', 'c', 'd']
    """
    membership: Dict[Hashable, List[int]] = {}
    for index, current in enumerate(sets):
        for element in current:
            membership.setdefault(element, []).append(index)
    buckets: Dict[FrozenSet[int], set] = {}
    for element, indices in membership.items():
        buckets.setdefault(frozenset(indices), set()).add(element)
    return [frozenset(elements) for elements in buckets.values()]


def minimum_disjoint_subsets_naive(sets: Sequence[FrozenSet]) -> List[FrozenSet]:
    """Reference MDS via iterative pairwise refinement (ablation baseline).

    Repeatedly splits any two overlapping groups into intersection and
    differences until the collection is pairwise disjoint.  Quadratic in
    the number of groups per round; kept only to quantify what the
    signature algorithm buys.
    """
    groups: List[FrozenSet] = [frozenset(current) for current in sets if current]
    changed = True
    while changed:
        changed = False
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                left, right = groups[i], groups[j]
                overlap = left & right
                if not overlap or left == right:
                    continue
                replacement = [overlap]
                if left - overlap:
                    replacement.append(left - overlap)
                if right - overlap:
                    replacement.append(right - overlap)
                groups = (
                    groups[:i]
                    + replacement
                    + groups[i + 1 : j]
                    + groups[j + 1 :]
                )
                changed = True
                break
            if changed:
                break
    # Deduplicate identical groups.
    unique: Dict[FrozenSet, None] = {}
    for group in groups:
        unique.setdefault(group)
    return list(unique)


class PrefixGroup(NamedTuple):
    """One FEC: its prefixes and, when policy-affected, its (VNH, VMAC)."""

    group_id: int
    prefixes: FrozenSet[IPv4Prefix]
    vnh: Optional[VirtualNextHop]

    @property
    def is_affected(self) -> bool:
        """True when some outbound policy overrides this group's default."""
        return self.vnh is not None


class FECTable:
    """The FEC partition plus prefix/VNH lookup indexes."""

    def __init__(self, groups: Iterable[PrefixGroup]) -> None:
        self.groups: Tuple[PrefixGroup, ...] = tuple(groups)
        self._by_prefix: Dict[IPv4Prefix, PrefixGroup] = {}
        for group in self.groups:
            for prefix in group.prefixes:
                self._by_prefix[prefix] = group

    @property
    def affected_groups(self) -> Tuple[PrefixGroup, ...]:
        return tuple(group for group in self.groups if group.is_affected)

    def group_for(self, prefix: "IPv4Prefix | str") -> Optional[PrefixGroup]:
        return self._by_prefix.get(IPv4Prefix(prefix))

    def vnh_for(self, prefix: "IPv4Prefix | str") -> Optional[VirtualNextHop]:
        group = self.group_for(prefix)
        return group.vnh if group is not None else None

    def groups_covering(self, prefixes: Iterable[IPv4Prefix]) -> List[PrefixGroup]:
        """The distinct groups containing any of ``prefixes``."""
        seen: Dict[int, PrefixGroup] = {}
        for prefix in prefixes:
            group = self._by_prefix.get(prefix)
            if group is not None:
                seen.setdefault(group.group_id, group)
        return list(seen.values())

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    def __repr__(self) -> str:
        affected = sum(1 for group in self.groups if group.is_affected)
        return f"FECTable(groups={len(self.groups)}, affected={affected})"


def compute_fec_table(
    policy_groups: Sequence[FrozenSet[IPv4Prefix]],
    bgp_fingerprint: Callable[[IPv4Prefix], Hashable],
    allocator: VirtualNextHopAllocator,
    vmac_for_group: Optional[Callable[[FrozenSet[IPv4Prefix], Hashable], Any]] = None,
) -> FECTable:
    """Run the three-pass FEC computation of Section 4.2.

    ``policy_groups`` are the pass-1 sets (prefixes whose default
    behavior each outbound forwarding action overrides);
    ``bgp_fingerprint`` maps a prefix to a hashable summary of its BGP
    state (pass 2); pass 3 buckets affected prefixes by
    (policy-group signature, fingerprint) and allocates one (VNH, VMAC)
    per resulting group.  Prefixes outside every policy group keep
    their default behavior and receive no VNH (the paper's ``p5`` case).

    ``vmac_for_group`` selects an attribute-encoded VMAC instead of the
    allocator's opaque one: it is called with each group's prefixes and
    shared fingerprint, and its result becomes the group's hardware
    address (the superset encoding hook).
    """
    signature_of: Dict[IPv4Prefix, List[int]] = {}
    for index, group in enumerate(policy_groups):
        for prefix in group:
            signature_of.setdefault(prefix, []).append(index)

    buckets: Dict[Tuple[FrozenSet[int], Hashable], set] = {}
    for prefix, indices in signature_of.items():
        key = (frozenset(indices), bgp_fingerprint(prefix))
        buckets.setdefault(key, set()).add(prefix)

    groups: List[PrefixGroup] = []
    for group_id, ((_, fingerprint), prefixes) in enumerate(
        sorted(buckets.items(), key=lambda item: sorted(map(str, item[1])))
    ):
        frozen = frozenset(prefixes)
        if vmac_for_group is not None:
            vnh = allocator.allocate(vmac_for_group(frozen, fingerprint))
        else:
            # Keep the zero-argument call so replay/stub allocators with
            # the historical signature stay compatible in per-FEC mode.
            vnh = allocator.allocate()
        groups.append(PrefixGroup(group_id, frozen, vnh))
    return FECTable(groups)
