"""``SDXConfig`` — the one place controller knobs are resolved.

The controller grew one keyword argument and one ``REPRO_*`` variable
per PR until the facade had twelve kwargs and five environment knobs
resolved ad hoc across four modules.  :class:`SDXConfig` consolidates
them: a frozen dataclass holding every tunable the controller accepts,
with a single resolution rule applied uniformly to every field —

    **explicit argument > environment variable > built-in default.**

``None`` in a field means *unset*; :meth:`SDXConfig.resolved` replaces
every unset field with its environment selection (when the knob has
one) or its default, validating as it goes.  :meth:`SDXConfig.from_env`
is the fully-resolved environment snapshot.

Primary construction form::

    controller = SDXController(config, sdx=SDXConfig(vmac_mode="superset"))

The legacy per-knob keyword arguments on :class:`SDXController` are
thin shims that overlay onto the ``sdx`` value, so existing call sites
keep working unchanged and obey the same precedence.

The :data:`KNOBS` table is the machine-readable registry behind both
the resolution and the README knob table — ``python -m
repro.core.config`` regenerates the markdown.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Any, Callable, Mapping, NamedTuple, Optional, Tuple

from repro.core.supersets import VMAC_MODES
from repro.dataplane.flowtable import DATAPLANE_MODES
from repro.guard import AdmissionConfig, GuardConfig
from repro.runtime import RUNTIME_MODES, RuntimeConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.backend import ExecutionBackend

__all__ = ["KNOBS", "Knob", "SDXConfig", "knob_table_markdown"]

#: names `backend="..."` accepts (backend_from_env's historical aliases)
BACKEND_NAMES = ("serial", "parallel", "pool", "multiprocessing")
_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


class Knob(NamedTuple):
    """One controller tunable: its field, env var, default, and doc."""

    field: str
    env: Optional[str]  # None: constructor-only (no environment form)
    default: Any
    values: str  # rendered value set, default first (for the README table)
    doc: str


#: Every controller knob, in README-table order.  ``resolved`` walks
#: this registry; the markdown generator renders it.
KNOBS: Tuple[Knob, ...] = (
    Knob(
        "vmac_mode",
        "REPRO_VMAC",
        "fec",
        "`fec`, `superset`",
        "VMAC encoding: opaque per-FEC addresses matched exactly, or the "
        "§5.3 attribute-carrying superset layout matched with masks "
        '(see "VMAC encoding modes" in `docs/internals.md`)',
    ),
    Knob(
        "dataplane_mode",
        "REPRO_DATAPLANE",
        "single",
        "`single`, `multitable`",
        "Fabric layout: both pipeline stages composed into one flow "
        "table, or stage-1 rules in table 0 chaining (`goto`) to "
        "delivery rules in table 1",
    ),
    Knob(
        "backend",
        "REPRO_BACKEND",
        "serial",
        "`serial`, `parallel`",
        "Compile-shard execution: in-process, or a fork pool "
        "(`REPRO_BACKEND_PROCS` pins the pool size); an "
        "`ExecutionBackend` instance is accepted directly",
    ),
    Knob(
        "runtime_mode",
        "REPRO_RUNTIME",
        "inline",
        "`inline`, `eventloop`",
        "Control-plane execution: facet calls apply synchronously, or "
        "flow through the deterministic cooperative event loop — "
        "bounded ingress queue, coalesced bursts, deferred guard "
        'verification (see "Control-plane runtime" in '
        "`docs/internals.md`)",
    ),
    Knob(
        "fast_path_enabled",
        "REPRO_FASTPATH",
        True,
        "`1`, `0`",
        "The §4.3.2 incremental fast path reacting to BGP best-path "
        "changes between full compilations",
    ),
    Knob(
        "runtime_config",
        None,
        None,
        "`RuntimeConfig(...)`",
        "Event-loop runtime tuning (queue capacity, burst coalescing, "
        "deferred guard, admission retry); `None` keeps the defaults",
    ),
    Knob(
        "guard",
        None,
        None,
        "`GuardConfig(...)`",
        "Guarded commits: budgeted per-commit differential verification "
        "with byte-exact rollback; `None` commits unguarded",
    ),
    Knob(
        "admission",
        None,
        None,
        "`AdmissionConfig(...)`",
        "Per-participant admission plane (rate limits, rule budgets, "
        "escalating backoff); `None` admits everything",
    ),
)

_KNOBS_BY_FIELD = {knob.field: knob for knob in KNOBS}


def _parse_choice(knob: Knob, raw: str, source: str, choices: Tuple[str, ...]) -> str:
    mode = raw.strip().lower() or str(knob.default)
    if mode not in choices:
        raise ValueError(
            f"{source}={raw!r}: expected one of {', '.join(choices)}"
        )
    return mode


def _parse_bool(knob: Knob, raw: str, source: str) -> bool:
    value = raw.strip().lower()
    if not value:
        return bool(knob.default)
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"{source}={raw!r}: expected one of "
        f"{', '.join(_TRUTHY)} / {', '.join(_FALSY)}"
    )


def _make_backend(name: str, env: Mapping[str, str]) -> "ExecutionBackend":
    from repro.pipeline.backend import ParallelBackend, SerialBackend

    if name == "serial":
        return SerialBackend()
    procs_raw = env.get("REPRO_BACKEND_PROCS")
    if procs_raw is not None:
        try:
            procs: Optional[int] = int(procs_raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BACKEND_PROCS={procs_raw!r}: expected an integer"
            ) from None
    else:
        procs = None
    return ParallelBackend(processes=procs)


@dataclasses.dataclass(frozen=True)
class SDXConfig:
    """Every :class:`~repro.core.controller.SDXController` tunable.

    Fields left ``None`` (the dataclass default) are *unset* and fall
    through to the environment and then the built-in default at
    :meth:`resolved` time; a field given explicitly always wins.  The
    instance is frozen, so a resolved config can be shared across the
    many controllers of a :class:`~repro.federation.FederatedExchange`
    without one exchange's knobs drifting from another's.
    """

    #: ``fec`` or ``superset`` (``REPRO_VMAC``)
    vmac_mode: Optional[str] = None
    #: ``single`` or ``multitable`` (``REPRO_DATAPLANE``)
    dataplane_mode: Optional[str] = None
    #: an :class:`~repro.pipeline.backend.ExecutionBackend` instance or
    #: a backend name (``REPRO_BACKEND`` / ``REPRO_BACKEND_PROCS``)
    backend: Optional["ExecutionBackend | str"] = None
    #: ``inline`` or ``eventloop`` (``REPRO_RUNTIME``)
    runtime_mode: Optional[str] = None
    #: event-loop tuning; only consulted when ``runtime_mode`` resolves
    #: to ``eventloop``
    runtime_config: Optional[RuntimeConfig] = None
    #: guarded-commit configuration (``None`` = unguarded)
    guard: Optional[GuardConfig] = None
    #: admission-plane configuration (``None`` = unmetered)
    admission: Optional[AdmissionConfig] = None
    #: the §4.3.2 incremental fast path (``REPRO_FASTPATH``)
    fast_path_enabled: Optional[bool] = None

    def __post_init__(self) -> None:
        # Validate explicit values eagerly so a typo fails at the call
        # site that made it, not at some later resolution.
        if self.vmac_mode is not None and self.vmac_mode not in VMAC_MODES:
            raise ValueError(
                f"vmac_mode={self.vmac_mode!r}: expected one of "
                f"{', '.join(VMAC_MODES)}"
            )
        if (
            self.dataplane_mode is not None
            and self.dataplane_mode not in DATAPLANE_MODES
        ):
            raise ValueError(
                f"dataplane_mode={self.dataplane_mode!r}: expected one of "
                f"{', '.join(DATAPLANE_MODES)}"
            )
        if self.runtime_mode is not None and self.runtime_mode not in RUNTIME_MODES:
            raise ValueError(
                f"runtime_mode={self.runtime_mode!r}: expected one of "
                f"{', '.join(RUNTIME_MODES)}"
            )
        if isinstance(self.backend, str) and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend={self.backend!r}: expected one of "
                f"{', '.join(BACKEND_NAMES)} or an ExecutionBackend instance"
            )
        if self.runtime_config is not None and not isinstance(
            self.runtime_config, RuntimeConfig
        ):
            raise ValueError(
                f"runtime_config={self.runtime_config!r}: expected a "
                "RuntimeConfig or None"
            )
        if self.guard is not None and not isinstance(self.guard, GuardConfig):
            raise ValueError(
                f"guard={self.guard!r}: expected a GuardConfig or None"
            )
        if self.admission is not None and not isinstance(
            self.admission, AdmissionConfig
        ):
            raise ValueError(
                f"admission={self.admission!r}: expected an AdmissionConfig or None"
            )
        if self.fast_path_enabled is not None and not isinstance(
            self.fast_path_enabled, bool
        ):
            raise ValueError(
                f"fast_path_enabled={self.fast_path_enabled!r}: expected a bool"
            )

    # -- resolution ----------------------------------------------------------

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "SDXConfig":
        """The fully-resolved environment snapshot (every knob set)."""
        return cls().resolved(env)

    def overlay(self, **overrides: Any) -> "SDXConfig":
        """A copy with the given (non-``None``) fields replaced.

        This is the legacy-kwarg shim: ``SDXController(vmac_mode=...)``
        overlays onto whatever ``sdx`` config was passed, keeping the
        explicit-argument precedence uniform between the two forms.
        """
        changed = {
            field: value for field, value in overrides.items() if value is not None
        }
        unknown = set(changed) - set(_KNOBS_BY_FIELD)
        if unknown:
            raise TypeError(f"unknown SDXConfig field(s): {sorted(unknown)}")
        return dataclasses.replace(self, **changed) if changed else self

    def resolved(self, env: Optional[Mapping[str, str]] = None) -> "SDXConfig":
        """Fill every unset field from the environment, then defaults.

        The returned config has no ``None`` left in the env-backed mode
        fields, carries a concrete
        :class:`~repro.pipeline.backend.ExecutionBackend` instance, and
        validates every environment value with the knob's name in the
        error message.  Idempotent.
        """
        source = os.environ if env is None else env

        def env_raw(knob: Knob) -> Optional[str]:
            return source.get(knob.env) if knob.env is not None else None

        vmac = self.vmac_mode
        if vmac is None:
            raw = env_raw(_KNOBS_BY_FIELD["vmac_mode"])
            vmac = (
                _parse_choice(
                    _KNOBS_BY_FIELD["vmac_mode"], raw, "REPRO_VMAC", VMAC_MODES
                )
                if raw is not None
                else "fec"
            )
        dataplane = self.dataplane_mode
        if dataplane is None:
            raw = env_raw(_KNOBS_BY_FIELD["dataplane_mode"])
            dataplane = (
                _parse_choice(
                    _KNOBS_BY_FIELD["dataplane_mode"],
                    raw,
                    "REPRO_DATAPLANE",
                    DATAPLANE_MODES,
                )
                if raw is not None
                else "single"
            )
        runtime_mode = self.runtime_mode
        if runtime_mode is None:
            raw = env_raw(_KNOBS_BY_FIELD["runtime_mode"])
            runtime_mode = (
                _parse_choice(
                    _KNOBS_BY_FIELD["runtime_mode"],
                    raw,
                    "REPRO_RUNTIME",
                    RUNTIME_MODES,
                )
                if raw is not None
                else "inline"
            )
        backend = self.backend
        if backend is None:
            raw = source.get("REPRO_BACKEND")
            name = (
                _parse_choice(
                    _KNOBS_BY_FIELD["backend"], raw, "REPRO_BACKEND", BACKEND_NAMES
                )
                if raw is not None
                else "serial"
            )
            backend = _make_backend(name, source)
        elif isinstance(backend, str):
            backend = _make_backend(
                "serial" if backend == "serial" else "parallel", source
            )
        fast_path = self.fast_path_enabled
        if fast_path is None:
            raw = source.get("REPRO_FASTPATH")
            fast_path = (
                _parse_bool(_KNOBS_BY_FIELD["fast_path_enabled"], raw, "REPRO_FASTPATH")
                if raw is not None
                else True
            )
        return dataclasses.replace(
            self,
            vmac_mode=vmac,
            dataplane_mode=dataplane,
            backend=backend,
            runtime_mode=runtime_mode,
            fast_path_enabled=fast_path,
        )

    def __repr__(self) -> str:
        shown = ", ".join(
            f"{field.name}={getattr(self, field.name)!r}"
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        )
        return f"SDXConfig({shown})"


# -- README knob-table generation ---------------------------------------------


def knob_table_markdown() -> str:
    """The README knob table, rendered from :data:`KNOBS`.

    ``python -m repro.core.config`` prints this; the README section is
    pasted from the output so the docs cannot drift from the registry.
    """
    lines = [
        "| Knob | `SDXConfig` field | Values (default first) | Selects |",
        "| --- | --- | --- | --- |",
    ]
    for knob in KNOBS:
        env = f"`{knob.env}`" if knob.env is not None else "—"
        lines.append(
            f"| {env} | `{knob.field}` | {knob.values} | {knob.doc} |"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - doc generator entry point
    print(knob_table_markdown())
