"""Participant-facing API objects.

A participating AS interacts with the SDX through two artifacts:

* an :class:`SDXPolicySet` — its inbound and outbound Pyretic policies
  (Section 3.1 requires participants to label which is which);
* a :class:`ParticipantHandle` — the object the controller hands back
  on registration, through which the AS submits policies, announces or
  withdraws prefixes (Section 3.2's ``announce()``/``withdraw()``), and
  inspects the routes the route server re-advertised to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.bgp.rib import RIBTable
from repro.ixp.topology import ParticipantSpec
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import Policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["ParticipantHandle", "SDXPolicySet"]


class SDXPolicySet:
    """A participant's policies, split by direction.

    Outbound policies apply to traffic the participant's border router
    sends into the fabric; inbound policies to traffic other
    participants (or the default forwarding) hand to its virtual switch.
    Either may be ``None`` — the paper's "simplest application specifies
    nothing", leaving all traffic on BGP-selected routes.
    """

    __slots__ = ("outbound", "inbound")

    def __init__(
        self, outbound: Optional[Policy] = None, inbound: Optional[Policy] = None
    ) -> None:
        self.outbound = outbound
        self.inbound = inbound

    @property
    def is_empty(self) -> bool:
        return self.outbound is None and self.inbound is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SDXPolicySet):
            return NotImplemented
        return self.outbound == other.outbound and self.inbound == other.inbound

    def __hash__(self) -> int:
        return hash((self.outbound, self.inbound))

    def __repr__(self) -> str:
        return (
            f"SDXPolicySet(outbound={self.outbound!r}, inbound={self.inbound!r})"
        )


class ParticipantHandle:
    """One AS's control channel to the SDX controller."""

    def __init__(self, spec: ParticipantSpec, controller: "SDXController") -> None:
        self.spec = spec
        self._controller = controller

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def asn(self) -> int:
        return self.spec.asn

    # -- policies -----------------------------------------------------------

    def set_policies(
        self,
        outbound: Optional[Policy] = None,
        inbound: Optional[Policy] = None,
        recompile: bool = True,
    ) -> None:
        """Install (replace) this participant's SDX policies."""
        self._controller.policy.set_policies(
            self.name, SDXPolicySet(outbound, inbound), recompile=recompile
        )

    def clear_policies(self, recompile: bool = True) -> None:
        """Remove this participant's policies (back to pure BGP)."""
        self._controller.policy.set_policies(
            self.name, SDXPolicySet(), recompile=recompile
        )

    # -- route origination (Section 3.2) --------------------------------------

    def announce(self, prefix: "IPv4Prefix | str") -> None:
        """Originate a BGP route for ``prefix`` from the SDX itself.

        Used by remote participants (e.g. the wide-area load balancer's
        anycast prefix).  The controller stands in for RPKI validation —
        ownership is assumed in this reproduction.
        """
        self._controller.routing.originate(self.name, prefix)

    def withdraw(self, prefix: "IPv4Prefix | str") -> None:
        """Withdraw a previously originated prefix."""
        self._controller.routing.withdraw_origination(self.name, prefix)

    # -- route inspection ----------------------------------------------------

    def rib(self) -> RIBTable:
        """A queryable snapshot of the routes available to this participant.

        Policies can be written against it::

            youtube = handle.rib().filter("as_path", r".*43515$")
        """
        return self._controller.route_server.rib_table(self.name)

    def learned_routes(self) -> List:
        """The best-route advertisements this participant currently receives."""
        return self._controller.advertisements(self.name)

    def __repr__(self) -> str:
        return f"ParticipantHandle({self.name!r})"
