"""The SDX core: virtual-switch abstraction, compiler, controller, fast path.

This package implements the paper's contribution proper.  Entry point:
:class:`~repro.core.controller.SDXController`.
"""

from repro.core.authorization import AuthorizationError, OwnershipRegistry, validate_rewrites
from repro.core.chaining import ServiceChain
from repro.core.compiler import (
    CompilationOptions,
    CompilationResult,
    CompilationStats,
    SDXCompiler,
)
from repro.core.config import SDXConfig
from repro.core.controller import PacketTrace, SDXController
from repro.core.multiswitch import SwitchTopology, distribute
from repro.core.fec import (
    FECTable,
    PrefixGroup,
    compute_fec_table,
    minimum_disjoint_subsets,
    minimum_disjoint_subsets_naive,
)
from repro.core.incremental import FastPathEngine, FastPathUpdate
from repro.core.participant import ParticipantHandle, SDXPolicySet
from repro.core.vmac import VirtualNextHop, VirtualNextHopAllocator

__all__ = [
    "AuthorizationError",
    "CompilationOptions",
    "CompilationResult",
    "CompilationStats",
    "FECTable",
    "FastPathEngine",
    "FastPathUpdate",
    "ParticipantHandle",
    "PrefixGroup",
    "SDXCompiler",
    "SDXConfig",
    "SDXController",
    "OwnershipRegistry",
    "PacketTrace",
    "SDXPolicySet",
    "ServiceChain",
    "SwitchTopology",
    "VirtualNextHop",
    "VirtualNextHopAllocator",
    "compute_fec_table",
    "distribute",
    "minimum_disjoint_subsets",
    "minimum_disjoint_subsets_naive",
    "validate_rewrites",
]
