"""Distributing the SDX policy over multiple physical switches.

Section 4.1 notes that a real SDX "may consist of multiple physical
switches, each connected to a subset of the participants", relying on
Pyretic's topology abstraction to combine the single-switch policy with
inter-switch routing.  This module implements that combination for our
classifier representation:

* the full single-switch classifier runs **only at the ingress switch**
  (the one owning the packet's arrival port); egress actions whose port
  lives on another switch are rewritten to the ingress switch's uplink
  toward the owner;
* frames in transit between switches are already *final* — the SDX
  compiler rewrites every delivered frame's destination MAC to the
  egress interface's physical address — so the other switches forward
  them with plain (in-port-scoped) MAC rules, exactly like today's
  multi-switch IXP fabrics.

Service-chain hop ports are the one exception to "transit frames are
final" (their frames keep the VMAC tag), so chains and their hop ports
must be colocated with their users' ingress switch; :func:`distribute`
rejects topologies that violate this.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.ixp.topology import IXPConfig
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule

__all__ = ["SwitchTopology", "distribute"]


class SwitchTopology:
    """Physical switches, their edge ports, and inter-switch links.

    ``switches`` maps a switch name to the SDX port ids attached to it;
    ``links`` are ((switch_a, uplink_port_a), (switch_b, uplink_port_b))
    pairs.  Uplink port names must not collide with edge port names.
    """

    def __init__(
        self,
        switches: Mapping[str, Iterable[str]],
        links: Iterable[Tuple[Tuple[str, str], Tuple[str, str]]] = (),
    ) -> None:
        self.switches: Dict[str, FrozenSet[str]] = {
            name: frozenset(ports) for name, ports in switches.items()
        }
        if not self.switches:
            raise ValueError("a topology needs at least one switch")
        seen_ports: Set[str] = set()
        for name, ports in self.switches.items():
            overlap = seen_ports & ports
            if overlap:
                raise ValueError(f"ports {sorted(overlap)} appear on two switches")
            seen_ports |= ports
        self.links: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
        self._neighbors: Dict[str, Dict[str, str]] = {name: {} for name in self.switches}
        for (switch_a, port_a), (switch_b, port_b) in links:
            for switch, port in ((switch_a, port_a), (switch_b, port_b)):
                if switch not in self.switches:
                    raise ValueError(f"unknown switch {switch!r} in link")
                if port in self.switches[switch]:
                    raise ValueError(
                        f"uplink {port!r} collides with an edge port on {switch!r}"
                    )
            self.links.append(((switch_a, port_a), (switch_b, port_b)))
            self._neighbors[switch_a][switch_b] = port_a
            self._neighbors[switch_b][switch_a] = port_b

    def owner_of(self, port_id: str) -> Optional[str]:
        """The switch owning an edge port."""
        for name, ports in self.switches.items():
            if port_id in ports:
                return name
        return None

    def uplink_ports(self, switch: str) -> FrozenSet[str]:
        """The inter-switch ports of ``switch``."""
        return frozenset(self._neighbors[switch].values())

    def next_hop_port(self, source: str, destination: str) -> Optional[str]:
        """The uplink ``source`` uses toward ``destination`` (BFS shortest path)."""
        if source == destination:
            return None
        visited = {source}
        queue = deque([(source, None)])
        first_hop: Dict[str, Optional[str]] = {source: None}
        while queue:
            current, origin = queue.popleft()
            for neighbor in self._neighbors[current]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                hop = origin if origin is not None else self._neighbors[source][neighbor]
                first_hop[neighbor] = hop
                if neighbor == destination:
                    return hop
                queue.append((neighbor, hop))
        return None

    def __repr__(self) -> str:
        return f"SwitchTopology(switches={sorted(self.switches)}, links={len(self.links)})"


def _validate(topology: SwitchTopology, config: IXPConfig, chain_hop_ports: FrozenSet[str]) -> None:
    configured = {port.port_id for port in config.physical_ports()}
    placed = set()
    for ports in topology.switches.values():
        placed |= ports
    missing = configured - placed
    if missing:
        raise ValueError(f"ports {sorted(missing)} not placed on any switch")
    extra = placed - configured
    if extra:
        raise ValueError(f"topology places unknown ports {sorted(extra)}")
    # Reachability of every switch pair.
    names = list(topology.switches)
    for destination in names[1:]:
        if topology.next_hop_port(names[0], destination) is None:
            raise ValueError(f"switch {destination!r} unreachable from {names[0]!r}")
    if chain_hop_ports:
        # Chain frames are not final (VMAC preserved); supporting them
        # across switches would need tag-aware transit rules.
        raise ValueError(
            "service chains are not supported on multi-switch topologies"
        )


def distribute(
    classifier: Classifier,
    topology: SwitchTopology,
    config: IXPConfig,
    chain_hop_ports: FrozenSet[str] = frozenset(),
) -> Dict[str, Classifier]:
    """Split a compiled single-switch SDX policy across physical switches.

    Returns one classifier per switch: in-port-scoped transit MAC rules
    first (frames arriving on uplinks), then the ingress policy with
    remote egress actions re-pointed at uplinks.
    """
    _validate(topology, config, chain_hop_ports)
    port_macs = {port.port_id: port.hardware for port in config.physical_ports()}

    out: Dict[str, Classifier] = {}
    for switch, edge_ports in topology.switches.items():
        rules: List[Rule] = []

        # Transit: frames from uplinks are final; forward by MAC.
        for uplink in sorted(topology.uplink_ports(switch)):
            for port_id, hardware in port_macs.items():
                owner = topology.owner_of(port_id)
                if owner == switch:
                    egress = port_id
                else:
                    egress = topology.next_hop_port(switch, owner)
                if egress is None or egress == uplink:
                    continue  # never bounce a frame back where it came from
                rules.append(
                    Rule(
                        HeaderMatch(port=uplink, dstmac=hardware),
                        (Action(port=egress),),
                    )
                )

        # Ingress: the full policy for packets arriving on local edge
        # ports, with remote egress ports rewritten to uplinks.
        for rule in classifier.rules:
            constraint = rule.match.constraints.get("port")
            if constraint is not None and constraint not in edge_ports:
                continue
            actions: List[Action] = []
            for action in rule.actions:
                target = action.output_port
                owner = topology.owner_of(target) if target is not None else None
                if owner is None or owner == switch:
                    actions.append(action)
                else:
                    uplink = topology.next_hop_port(switch, owner)
                    actions.append(action.then(Action(port=uplink)))
            rules.append(Rule(rule.match, actions) if not rule.is_drop else rule)
        out[switch] = Classifier(rules)
    return out
