"""Prefix-ownership validation (the paper's RPKI integration point).

Two places in the paper require proof of address ownership:

* "Before originating the route announcement in BGP, the SDX would
  verify that AS D indeed owns the IP prefix (e.g., using the RPKI)"
  — Section 3.2;
* "The content provider issuing this policy would first need to
  demonstrate to the SDX that it owns the corresponding IP address
  blocks" — the load-balancer's destination rewrites, Section 3.1.

:class:`OwnershipRegistry` is the RPKI stand-in: a set of
(ASN, prefix, max-length) authorizations, queried like ROAs.  The
controller consults it on route origination when configured with one,
and :func:`validate_rewrites` vets a policy's destination rewrites.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie
from repro.policy.language import Policy

__all__ = ["AuthorizationError", "OwnershipRegistry", "validate_rewrites"]


class AuthorizationError(Exception):
    """An action touched address space its requester does not own."""


class OwnershipRegistry:
    """ROA-style (ASN, prefix, max_length) authorizations."""

    def __init__(self) -> None:
        self._roas = PrefixTrie()

    def register(
        self, asn: int, prefix: "IPv4Prefix | str", max_length: Optional[int] = None
    ) -> None:
        """Record that ``asn`` may originate ``prefix`` (up to ``max_length``)."""
        prefix = IPv4Prefix(prefix)
        if max_length is None:
            max_length = prefix.length
        if not prefix.length <= max_length <= 32:
            raise ValueError(
                f"max_length {max_length} invalid for {prefix}"
            )
        entries: Set[Tuple[int, int]] = self._roas.get(prefix, set())  # type: ignore[assignment]
        entries = set(entries)
        entries.add((asn, max_length))
        self._roas[prefix] = entries

    def authorizes(self, asn: int, prefix: "IPv4Prefix | str") -> bool:
        """ROA semantics: some registered covering prefix authorizes ``asn``
        at this prefix length."""
        prefix = IPv4Prefix(prefix)
        current: Optional[IPv4Prefix] = prefix
        # Walk every covering ROA (the trie stores by exact prefix, so
        # check each ancestor length, including the prefix itself).
        for length in range(prefix.length, -1, -1):
            ancestor = IPv4Prefix(int(prefix.network), length)
            entries = self._roas.get(ancestor)
            if not entries:
                continue
            for roa_asn, max_length in entries:  # type: ignore[union-attr]
                if roa_asn == asn and prefix.length <= max_length:
                    return True
        return False

    def owners_of(self, prefix: "IPv4Prefix | str") -> List[int]:
        """Every ASN holding a ROA covering ``prefix``."""
        prefix = IPv4Prefix(prefix)
        owners: Set[int] = set()
        for length in range(prefix.length, -1, -1):
            ancestor = IPv4Prefix(int(prefix.network), length)
            entries = self._roas.get(ancestor)
            if entries:
                for roa_asn, max_length in entries:  # type: ignore[union-attr]
                    if prefix.length <= max_length:
                        owners.add(roa_asn)
        return sorted(owners)

    def require(self, asn: int, prefix: "IPv4Prefix | str") -> None:
        """Raise :class:`AuthorizationError` unless authorized."""
        if not self.authorizes(asn, prefix):
            raise AuthorizationError(
                f"AS{asn} is not authorized to originate {IPv4Prefix(prefix)}"
            )

    def __len__(self) -> int:
        return sum(1 for _ in self._roas.items())


def _rewrite_targets(policy: Policy) -> Iterator[IPv4Address]:
    """Every destination address some action of ``policy`` rewrites to."""
    from repro.policy.language import Modify

    for node in policy.walk():
        if isinstance(node, Modify):
            target = node.action.get("dstip")
            if target is not None:
                yield target


def validate_rewrites(
    policy: Policy, asn: int, registry: OwnershipRegistry
) -> None:
    """Check a policy's ``modify(dstip=...)`` targets against ownership.

    The wide-area load balancer may only redirect traffic to addresses
    it controls; anything else would let a tenant hijack third-party
    services through the exchange.
    """
    for target in _rewrite_targets(policy):
        if not registry.authorizes(asn, target.to_prefix()):
            raise AuthorizationError(
                f"AS{asn} rewrites destinations to {target}, which it does not own"
            )
