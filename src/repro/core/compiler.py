"""The SDX policy compiler (the left pipeline of Figure 3).

Given the participants' policies and the route server's current state,
:class:`SDXCompiler` produces the single flow-table policy for the
physical switch by running the Section 4.1 transformations with the
Section 4.2/4.3 optimizations:

1. compile each participant's policy ASTs to classifiers (memoized);
2. extract policy prefix groups and compute the FEC table + VNH/VMAC
   assignment (Section 4.2);
3. per participant: VMAC-encode the BGP reachability filters, seal the
   claimed flow space, and pin the result to the participant's ports;
4. build the shared default-forwarding block and per-participant
   delivery blocks;
5. compose the two stages of the virtual topology, consulting — for
   every forwarding action — only the block of the participant it
   targets (the "subset of participants" optimization).

Every optimization can be disabled through :class:`CompilationOptions`
for the ablation benchmarks.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.bgp.messages import Route
from repro.bgp.route_server import RouteServer
from repro.core.chaining import (
    ServiceChain,
    chain_continuation_rules,
    chain_entry_block,
    validate_chains,
)
from repro.core.fec import FECTable, PrefixGroup, compute_fec_table
from repro.core.participant import SDXPolicySet
from repro.core.supersets import (
    SupersetEncoder,
    default_delivery_classifier_superset,
    default_forwarding_classifier_superset,
    encoding_inputs,
    vmacify_outbound_superset,
)
from repro.core.transforms import (
    concat_disjoint,
    default_delivery_classifier,
    default_forwarding_classifier,
    extract_policy_groups,
    isolate,
    rewrite_inbound_delivery,
    vmacify_outbound,
)
from repro.core.vmac import VirtualNextHopAllocator
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.policy.analysis import with_fallback
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule, sequence_rule
from repro.policy.language import Policy
from repro.telemetry import MetricsRegistry

__all__ = [
    "CompilationOptions",
    "CompilationResult",
    "CompilationStats",
    "SDXCompiler",
]

_EMPTY = Classifier()


class CompilationOptions(NamedTuple):
    """Feature switches for the Section 4.3.1 optimizations (ablations)."""

    #: compose each forwarding action only with its target's block
    prune_targets: bool = True
    #: combine isolated per-participant blocks by concatenation instead
    #: of full parallel composition
    disjoint_concat: bool = True
    #: cache policy-AST compilations and reuse second-stage blocks
    memoize: bool = True
    #: build the per-(participant, prefix) advertisement map; headless
    #: scaling experiments turn this off (they never push routes)
    build_advertisements: bool = True


class CompilationStats(NamedTuple):
    """Where compile time went (Figure 8's measurement breakdown)."""

    policy_compile_seconds: float
    vnh_compute_seconds: float
    transform_seconds: float
    compose_seconds: float
    total_seconds: float
    policy_groups: int
    fec_groups: int
    rules: int


class CompilationResult(NamedTuple):
    """Everything a full compilation produces.

    ``segments`` partitions ``classifier`` (in order) by rule
    provenance: ``("policy", name)`` for a participant's composed
    policy block, ``("chains",)`` for service-chain continuations,
    ``("default",)`` for shared default forwarding — the basis for
    per-policy traffic accounting in the switch.
    """

    classifier: Classifier
    fec_table: FECTable
    stage1: Classifier
    stage2_blocks: Mapping[Any, Classifier]
    advertised_next_hops: Mapping[Tuple[str, IPv4Prefix], IPv4Address]
    stats: CompilationStats
    segments: Tuple[Tuple[Any, Classifier], ...] = ()
    #: multi-table layout: segment label -> (table id, goto table);
    #: empty means every segment lands in table 0 with no chaining
    placements: Mapping[Any, Tuple[int, Optional[int]]] = {}


class SDXCompiler:
    """Compiles participant policies + BGP state into one classifier."""

    def __init__(
        self,
        config: IXPConfig,
        route_server: RouteServer,
        options: CompilationOptions = CompilationOptions(),
        telemetry: Optional[MetricsRegistry] = None,
        vmac_mode: str = "fec",
        encoder: Optional["SupersetEncoder"] = None,
    ) -> None:
        self.config = config
        self.route_server = route_server
        self.options = options
        self.telemetry = telemetry
        #: "fec" (opaque per-class VMACs, exact matches) or "superset"
        #: (attribute-encoded VMACs, masked matches); superset requires
        #: an encoder — one is created on demand when none is supplied
        self.vmac_mode = vmac_mode
        if vmac_mode == "superset" and encoder is None:
            encoder = SupersetEncoder(telemetry=telemetry)
        self.encoder = encoder
        self._ast_cache: Dict[Policy, Classifier] = {}
        self._m_phase = self._m_total = self._m_compiles = None
        self._m_cache = self._m_rules = self._m_groups = None
        if telemetry is not None:
            self._m_phase = telemetry.histogram(
                "sdx_compile_phase_seconds",
                "Time spent per compilation phase",
                labels=("phase",),
            )
            self._m_total = telemetry.histogram(
                "sdx_compile_seconds", "End-to-end full compilation time"
            )
            self._m_compiles = telemetry.counter(
                "sdx_compilations_total", "Full compilation pipeline runs"
            )
            self._m_cache = telemetry.counter(
                "sdx_ast_cache_total",
                "Policy-AST compilation cache lookups",
                labels=("result",),
            )
            self._m_rules = telemetry.gauge(
                "sdx_compile_rules", "Flow rules emitted by the last compilation"
            )
            self._m_groups = telemetry.gauge(
                "sdx_compile_fec_groups", "FEC groups in the last compilation"
            )

    # -- small helpers ------------------------------------------------------

    def _now(self) -> float:
        """The telemetry time source, or wall clock when uninstrumented."""
        if self.telemetry is not None:
            return self.telemetry.now()
        return time.perf_counter()

    def _compile_ast(self, policy: Optional[Policy]) -> Classifier:
        if policy is None:
            return _EMPTY
        if not self.options.memoize:
            return policy.compile()
        cached = self._ast_cache.get(policy)
        if cached is None:
            if self._m_cache is not None:
                self._m_cache.inc(result="miss")
            cached = policy.compile()
            self._ast_cache[policy] = cached
        elif self._m_cache is not None:
            self._m_cache.inc(result="hit")
        return cached

    def _fingerprint(self, prefix: IPv4Prefix):
        """Hashable BGP-state summary (pass 2 of the FEC computation)."""
        return tuple(
            (route.learned_from, int(route.attributes.next_hop), route.export_to)
            for route in self.route_server.ranked_routes(prefix)
        )

    # -- VMAC-encoding dispatch ---------------------------------------------

    @property
    def _vmac_for_group(self):
        """The FEC-stage VMAC hook: attribute-encode in superset mode."""
        if self.vmac_mode != "superset":
            return None
        encoder = self.encoder

        def vmac_for_group(prefixes, fingerprint):
            return encoder.encode(*encoding_inputs(fingerprint))

        return vmac_for_group

    def _vmacify(self, classifier, participant_names, reachable, fec_table):
        if self.vmac_mode == "superset":
            return vmacify_outbound_superset(
                classifier, participant_names, reachable, fec_table, self.encoder
            )
        return vmacify_outbound(classifier, participant_names, reachable, fec_table)

    def _default_forwarding(self, fec_table, ranked_routes):
        if self.vmac_mode == "superset":
            return default_forwarding_classifier_superset(
                self.config, fec_table, ranked_routes, self.encoder
            )
        return default_forwarding_classifier(self.config, fec_table, ranked_routes)

    def _default_delivery(self, participant, fec_table, ranked_routes):
        if self.vmac_mode == "superset":
            return default_delivery_classifier_superset(
                participant, fec_table, ranked_routes, self.encoder
            )
        return default_delivery_classifier(participant, fec_table, ranked_routes)

    # -- main entry point -----------------------------------------------------

    def compile(
        self,
        policies: Mapping[str, SDXPolicySet],
        originated: Optional[Mapping[str, FrozenSet[IPv4Prefix]]] = None,
        allocator: Optional[VirtualNextHopAllocator] = None,
        chains: Iterable[ServiceChain] = (),
    ) -> CompilationResult:
        """Run the full pipeline.

        ``policies`` maps participant names to their policy sets;
        ``originated`` maps participants to prefixes they asked the SDX
        to originate (those are always assigned VNHs so senders can tag
        them).  ``allocator`` supplies VNH/VMAC pairs — the controller
        passes a fresh one on every full compilation.  ``chains`` are
        the registered service chains participants may ``fwd()`` into.
        """
        started = self._now()
        originated = originated or {}
        chains = list(chains)
        validate_chains(chains, self.config)
        chain_hop_ports = {hop for chain in chains for hop in chain.hops}
        if allocator is None:
            allocator = VirtualNextHopAllocator(self.config.vnh_pool)
        participant_names = frozenset(self.config.participant_names())

        # Phase A: policy ASTs -> classifiers.
        phase = self._now()
        out_raw: Dict[str, Classifier] = {}
        in_raw: Dict[str, Classifier] = {}
        for name in self.config.participant_names():
            policy_set = policies.get(name)
            if policy_set is None:
                continue
            if policy_set.outbound is not None:
                out_raw[name] = self._compile_ast(policy_set.outbound)
            if policy_set.inbound is not None:
                in_raw[name] = self._compile_ast(policy_set.inbound)
        policy_compile_seconds = self._now() - phase

        # Phase B: prefix groups + FEC table (VNH computation).
        phase = self._now()
        policy_groups: List[FrozenSet[IPv4Prefix]] = []
        for name, classifier in out_raw.items():
            reachable = self._reachable_fn(name)
            policy_groups.extend(
                extract_policy_groups(classifier, participant_names, reachable)
            )
        for name, prefixes in originated.items():
            if prefixes:
                policy_groups.append(frozenset(prefixes))
        fec_table = compute_fec_table(
            policy_groups, self._fingerprint, allocator, self._vmac_for_group
        )
        ranked_cache: Dict[int, Tuple[Route, ...]] = {}

        def ranked_routes(group: PrefixGroup) -> Tuple[Route, ...]:
            cached = ranked_cache.get(group.group_id)
            if cached is None:
                sample = next(iter(group.prefixes))
                cached = self.route_server.ranked_routes(sample)
                ranked_cache[group.group_id] = cached
            return cached

        vnh_compute_seconds = self._now() - phase

        # Phase C: per-participant transformed blocks, labelled with their
        # provenance so the controller can account traffic per policy.
        phase = self._now()
        labeled_blocks: List[Tuple[Any, Classifier]] = []
        for participant in self.config.participants():
            raw = out_raw.get(participant.name)
            if raw is None or participant.is_remote:
                continue
            vmacified = self._vmacify(
                raw,
                participant_names,
                self._reachable_fn(participant.name),
                fec_table,
            )
            sealed = with_fallback(vmacified, _EMPTY)
            labeled_blocks.append(
                (("policy", participant.name), isolate(sealed, participant.port_ids))
            )
        stage1_blocks = [block for _, block in labeled_blocks]
        default_block = self._default_forwarding(fec_table, ranked_routes)

        stage2_blocks: Dict[Any, Classifier] = {}
        for participant in self.config.participants():
            raw_in = in_raw.get(participant.name, _EMPTY)
            delivery_ready = rewrite_inbound_delivery(raw_in, self.config)
            combined = with_fallback(
                delivery_ready,
                self._default_delivery(participant, fec_table, ranked_routes),
            )
            stage2_blocks[participant.name] = isolate(combined, [participant.name])
        for port in self.config.physical_ports():
            if port.port_id in chain_hop_ports:
                # Chain hops keep the frame's VMAC: no MAC rewrite, the
                # appliance taps promiscuously and the preserved tag is
                # what resumes default forwarding after the last hop.
                egress = Action(port=port.port_id)
            else:
                egress = Action(port=port.port_id, dstmac=port.hardware)
            stage2_blocks[port.port_id] = Classifier(
                [Rule(HeaderMatch(port=port.port_id), (egress,))]
            )
        for chain in chains:
            stage2_blocks[chain] = chain_entry_block(chain)
        continuation = Classifier(chain_continuation_rules(chains))
        transform_seconds = self._now() - phase

        # Phase D: two-stage composition.  Stage-1 blocks are disjoint
        # and ordered, so composing them separately preserves both the
        # global rule order and each rule's provenance label.
        phase = self._now()
        labeled_blocks.append((("chains",), continuation))
        labeled_blocks.append((("default",), default_block))
        if self.options.disjoint_concat:
            stage1 = concat_disjoint([block for _, block in labeled_blocks])
            segments: List[Tuple[Any, Classifier]] = []
            for label, block in labeled_blocks:
                composed = self._compose(
                    block, stage2_blocks, in_raw, fec_table, ranked_routes
                )
                if len(composed):
                    segments.append((label, composed))
            final = concat_disjoint([segment for _, segment in segments])
        else:
            stage1 = _EMPTY
            for block in stage1_blocks + [continuation]:
                stage1 = stage1 + block
            stage1 = with_fallback(stage1, default_block)
            final = self._compose(stage1, stage2_blocks, in_raw, fec_table, ranked_routes)
            segments = [(("all",), final)]
        compose_seconds = self._now() - phase

        advertised = (
            self._advertised_next_hops(fec_table)
            if self.options.build_advertisements
            else {}
        )
        total = self._now() - started
        stats = CompilationStats(
            policy_compile_seconds=policy_compile_seconds,
            vnh_compute_seconds=vnh_compute_seconds,
            transform_seconds=transform_seconds,
            compose_seconds=compose_seconds,
            total_seconds=total,
            policy_groups=len(policy_groups),
            fec_groups=len(fec_table.affected_groups),
            rules=len(final),
        )
        self._record_stats(stats)
        return CompilationResult(
            classifier=final,
            fec_table=fec_table,
            stage1=stage1,
            stage2_blocks=stage2_blocks,
            advertised_next_hops=advertised,
            stats=stats,
            segments=tuple(segments),
        )

    def _record_stats(self, stats: CompilationStats) -> None:
        """Fold one compilation's phase breakdown into the registry."""
        if self.telemetry is None:
            return
        self._m_compiles.inc()
        self._m_phase.observe(stats.policy_compile_seconds, phase="ast")
        self._m_phase.observe(stats.vnh_compute_seconds, phase="fec")
        self._m_phase.observe(stats.transform_seconds, phase="transform")
        self._m_phase.observe(stats.compose_seconds, phase="compose")
        self._m_total.observe(stats.total_seconds)
        self._m_rules.set(stats.rules)
        self._m_groups.set(stats.fec_groups)

    # -- composition ----------------------------------------------------------

    def _compose(
        self,
        stage1: Classifier,
        stage2_blocks: Mapping[Any, Classifier],
        in_raw: Mapping[str, Classifier],
        fec_table: FECTable,
        ranked_routes,
    ) -> Classifier:
        """Sequentially compose the two virtual-topology stages.

        With ``prune_targets`` every stage-1 action consults only the
        block of the location it forwards to; otherwise the full
        concatenated second stage is scanned for every rule — the
        difference is exactly the paper's first 4.3.1 optimization.
        """
        if self.options.prune_targets:
            if self.options.memoize:
                resolve = stage2_blocks.get
            else:
                # Ablation: rebuild the target's block on every use, as a
                # compiler without sub-policy memoization would.
                def resolve(target: Any) -> Optional[Classifier]:
                    block = stage2_blocks.get(target)
                    if block is None:
                        return None
                    return Classifier(list(block.rules))

            rules: List[Rule] = []
            for rule in stage1.rules:
                rules.extend(
                    sequence_rule(rule, lambda action: resolve(action.output_port))
                )
            return Classifier(rules).optimized()
        ordered_blocks = [stage2_blocks[key] for key in sorted(stage2_blocks, key=str)]
        stage2 = concat_disjoint(ordered_blocks)
        return stage1 >> stage2

    # -- BGP plumbing ------------------------------------------------------------

    def _reachable_fn(self, participant: str):
        loc_rib = self.route_server.loc_rib(participant)
        cache: Dict[str, FrozenSet[IPv4Prefix]] = {}

        def reachable(target: str) -> FrozenSet[IPv4Prefix]:
            found = cache.get(target)
            if found is None:
                found = loc_rib.prefixes_via(target)
                cache[target] = found
            return found

        return reachable

    def _advertised_next_hops(
        self, fec_table: FECTable
    ) -> Dict[Tuple[str, IPv4Prefix], IPv4Address]:
        """Next-hop values for every (participant, prefix) re-advertisement.

        Policy-affected prefixes get their FEC's VNH; everything else
        keeps the announcing router's real next-hop, so the route server
        "simply behaves like a normal route server" for them.
        """
        advertised: Dict[Tuple[str, IPv4Prefix], IPv4Address] = {}
        for name in self.config.participant_names():
            loc_rib = self.route_server.loc_rib(name)
            for prefix, route in loc_rib.items():
                group = fec_table.group_for(prefix)
                if group is not None and group.is_affected:
                    advertised[(name, prefix)] = group.vnh.address
                else:
                    advertised[(name, prefix)] = route.attributes.next_hop
        return advertised
