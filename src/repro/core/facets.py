"""Faceted controller API: ``controller.routing`` / ``.policy`` / ``.ops``.

The flat ``SDXController`` surface had grown to ~50 methods mixing
three very different audiences — BGP speakers, policy authors, and
operators.  The facets split that surface into cohesive namespaces
while staying *thin views over existing controller state*: no facet
owns data, every method reads and writes the same structures the flat
API always did, so the two surfaces can never disagree.

* :class:`RoutingFacet` (``controller.routing``) — the BGP side:
  ``process_update`` / ``batched_updates``, the ``announce`` /
  ``withdraw`` conveniences, SDX route origination, re-advertisement
  queries, and border-router feeds.
* :class:`PolicyFacet` (``controller.policy``) — the policy-author
  side: ``set_policies``, service-chain definition, and the read views
  over installed policies and chains.
* :class:`OpsFacet` (``controller.ops``) — the operator side: health,
  metrics, quarantine management, commit hooks, the fast-path log,
  ``churn()`` — the structured reconciliation counters of the delta
  fabric committer — and ``verify()``, one pass of the
  :mod:`repro.verify` differential oracle over the installed tables.

The facets are *the* controller API: the historical flat methods (and
their deprecation-warning shims) are gone.

Every mutating entry point is split in two: a module-level ``_apply_*``
function holding the actual body, and the facet method that routes to
it.  With ``REPRO_RUNTIME=inline`` (the default) the facet calls the
body synchronously; with ``eventloop`` it submits a typed event to
``controller.runtime`` and the runtime's ingress task calls the *same*
body — same code, different scheduling, which is what makes the two
modes byte-identical (``tests/property/test_runtime_equivalence.py``).
Either way the update→install latency lands on the
``sdx_update_install_seconds`` histogram, labelled by event kind.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
)

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.route_server import BestPathChange
from repro.dataplane.reconcile import ChurnStats, CommitReport
from repro.netutils.ip import IPv4Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler import CompilationResult
    from repro.core.controller import SDXController
    from repro.core.incremental import FastPathUpdate
    from repro.core.participant import SDXPolicySet
    from repro.dataplane.router import BorderRouter
    from repro.resilience.health import HealthReport, QuarantineRecord
    from repro.verify.checker import CheckReport

__all__ = ["OpsFacet", "PolicyFacet", "RoutingFacet"]


# ---------------------------------------------------------------------------
# Shared apply bodies.
#
# These module-level functions are the single implementation of every
# mutating control-plane operation.  Inline mode calls them directly
# (wrapped in latency observation); the event-loop runtime calls them
# from its ingress task via the typed events in repro.runtime.events.
# They must stay free of runtime/facet knowledge so the two schedules
# execute identical code.
# ---------------------------------------------------------------------------


def _apply_process_update(
    controller: "SDXController", update: BGPUpdate
) -> List[BestPathChange]:
    if controller.admission is not None:
        controller.admission.admit_update(update)
    return controller.pipeline.ingress.submit(update)


def _apply_set_policies(
    controller: "SDXController",
    name: str,
    policy_set: "SDXPolicySet",
    recompile: bool = True,
) -> None:
    from repro.pipeline.events import PolicyChanged

    controller.config.participant(name)
    if controller.admission is not None:
        controller.admission.admit_policy_edit(name, policy_set)
    controller._quarantined.pop(name, None)
    if policy_set.is_empty:
        controller._policies.pop(name, None)
    else:
        controller._policies[name] = policy_set
    controller.pipeline.bus.publish(PolicyChanged(name))
    controller._maybe_compile(recompile)


def _apply_originate(
    controller: "SDXController", name: str, prefix: "IPv4Prefix | str"
) -> None:
    prefix = IPv4Prefix(prefix)
    spec = controller.config.participant(name)
    if controller.ownership is not None:
        controller.ownership.require(spec.asn, prefix)
    controller._originated.setdefault(name, set()).add(prefix)
    # Origination changes the FEC input even when the announcement
    # does not move a best path, so mark routes dirty explicitly.
    controller.pipeline.dirty.mark_routes()
    attributes = RouteAttributes(
        as_path=[spec.asn],
        next_hop=controller.config.vnh_pool.network,
    )
    update = BGPUpdate(name, announced=[Announcement(prefix, attributes)])
    _apply_process_update(controller, update)


def _apply_withdraw_origination(
    controller: "SDXController", name: str, prefix: "IPv4Prefix | str"
) -> None:
    prefix = IPv4Prefix(prefix)
    originated = controller._originated.get(name)
    if originated is not None:
        originated.discard(prefix)
    controller.pipeline.dirty.mark_routes()
    _apply_process_update(controller, BGPUpdate(name, withdrawn=[Withdrawal(prefix)]))


def _apply_define_chain(
    controller: "SDXController", chain: "ServiceChain", recompile: bool = False
) -> None:
    from repro.core.chaining import validate_chains
    from repro.pipeline.events import ChainsChanged

    validate_chains([chain], controller.config)
    controller._chains[chain.name] = chain
    controller.pipeline.bus.publish(ChainsChanged(chain.name))
    controller._maybe_compile(recompile)


def _apply_remove_chain(
    controller: "SDXController", name: str, recompile: bool = False
) -> None:
    from repro.pipeline.events import ChainsChanged

    if controller._chains.pop(name, None) is not None:
        controller.pipeline.bus.publish(ChainsChanged(name))
    controller._maybe_compile(recompile)


def _apply_release_quarantine(
    controller: "SDXController", name: str, recompile: bool = True
) -> bool:
    from repro.pipeline.events import QuarantineLifted

    released = controller._quarantined.pop(name, None) is not None
    if released:
        controller.pipeline.bus.publish(QuarantineLifted(name))
        controller._maybe_compile(recompile)
    return released


def _inline(controller: "SDXController", kind: str, fn: Callable[[], Any]):
    """Run an apply body synchronously, observing update→install latency
    (the event-loop runtime observes the same histogram at completion)."""
    telemetry = controller.telemetry
    started = telemetry.now()
    try:
        return fn()
    finally:
        controller._m_install_latency.observe(
            telemetry.now() - started, kind=kind
        )


class _Facet:
    """Base: a named view over one controller's state."""

    __slots__ = ("_controller",)

    def __init__(self, controller: "SDXController") -> None:
        self._controller = controller

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._controller!r})"


class RoutingFacet(_Facet):
    """BGP input, origination, and re-advertisement (``controller.routing``)."""

    __slots__ = ()

    # -- BGP input ---------------------------------------------------------

    def process_update(self, update: BGPUpdate) -> List[BestPathChange]:
        """Feed one BGP UPDATE from a participant into the route server.

        Best-path changes trigger the fast path automatically (when a
        base compilation exists and the fast path is enabled).  With
        resilience enabled, the update first passes the RFC 7606 guard
        and flap-damping bookkeeping.

        With an admission plane configured, the update is first metered
        against the peer's announcement budget; a rejection raises
        :class:`~repro.guard.admission.AnnouncementRateExceeded` (with
        ``retry_after``) before the route server sees anything.

        Under ``REPRO_RUNTIME=eventloop`` the update is submitted to the
        runtime's bounded ingress queue instead; outside a
        ``runtime.pipelined()`` block the call still blocks until the
        update is fully installed and returns the same changes.
        """
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_update(update)
        return _inline(
            controller, "update", lambda: _apply_process_update(controller, update)
        )

    def batched_updates(self):
        """Context manager coalescing a BGP burst's fast-path work.

        Updates inside the block apply to the route server immediately
        (RIB ordering preserved); the resulting best-path changes are
        deduplicated per prefix and handed to the fast path once, when
        the block closes.
        """
        return self._controller.pipeline.ingress.batch()

    def announce(
        self,
        name: str,
        prefix: "IPv4Prefix | str",
        attributes: RouteAttributes,
        export_to=None,
    ) -> List[BestPathChange]:
        """Convenience wrapper for a participant announcing a route."""
        update = BGPUpdate(
            name, announced=[Announcement(prefix, attributes, export_to=export_to)]
        )
        return self.process_update(update)

    def withdraw(self, name: str, prefix: "IPv4Prefix | str") -> List[BestPathChange]:
        """Convenience wrapper for a participant withdrawing a route."""
        update = BGPUpdate(name, withdrawn=[Withdrawal(prefix)])
        return self.process_update(update)

    # -- SDX route origination (Section 3.2) -------------------------------

    def originate(self, name: str, prefix: "IPv4Prefix | str") -> None:
        """Originate ``prefix`` from the SDX on behalf of ``name``.

        The route enters the route server like any announcement, with
        the participant's own ASN as the path and a placeholder next-hop
        from the VNH pool (the compiler always assigns such prefixes a
        real VNH, because senders can only reach them through a tag).

        When the controller was built with an ownership registry (the
        RPKI stand-in), the participant must hold a covering ROA.
        """
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_originate(name, prefix)
        return _inline(
            controller, "originate", lambda: _apply_originate(controller, name, prefix)
        )

    def withdraw_origination(self, name: str, prefix: "IPv4Prefix | str") -> None:
        """Withdraw a previously originated prefix."""
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_withdraw_origination(name, prefix)
        return _inline(
            controller,
            "originate",
            lambda: _apply_withdraw_origination(controller, name, prefix),
        )

    def originated(self) -> Mapping[str, FrozenSet[IPv4Prefix]]:
        """Prefixes the SDX currently originates, per participant."""
        return {
            name: frozenset(prefixes)
            for name, prefixes in self._controller._originated.items()
        }

    # -- re-advertisement and router feeds ---------------------------------

    def advertisements(self, name: str) -> List[Announcement]:
        """Best routes re-advertised to ``name``, next-hops VNH-rewritten."""
        return self._controller.advertisements(name)

    def attach_router(self, name: str, router: "BorderRouter") -> None:
        """Wire a border router to receive this participant's advertisements."""
        self._controller.attach_router(name, router)

    def refresh_prefix(self, prefix: "IPv4Prefix | str") -> "FastPathUpdate":
        """Force one prefix through the fast path (damping catch-up)."""
        return self._controller.refresh_prefix(prefix)


class PolicyFacet(_Facet):
    """Policy and service-chain management (``controller.policy``)."""

    __slots__ = ()

    def set_policies(
        self, name: str, policy_set: "SDXPolicySet", recompile: bool = True
    ) -> None:
        """Install a participant's policy set, optionally recompiling now.

        Submitting a new policy set clears any quarantine on the
        participant — it is their chance to ship a fix.

        With an admission plane configured, the edit is first metered
        against the participant's policy-edit rate and compiled-rule
        budget; a typed :class:`~repro.guard.admission.AdmissionError`
        rejection leaves every controller structure untouched.
        """
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_policies(name, policy_set, recompile=recompile)
        return _inline(
            controller,
            "policy",
            lambda: _apply_set_policies(
                controller, name, policy_set, recompile=recompile
            ),
        )

    def policies(self) -> Mapping[str, "SDXPolicySet"]:
        """The currently installed policy sets, by participant."""
        return dict(self._controller._policies)

    # -- service chains (Section 8 extension) ------------------------------

    def define_chain(self, chain: "ServiceChain", recompile: bool = False) -> None:
        """Register a middlebox service chain participants may ``fwd()`` into."""
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_define_chain(chain, recompile=recompile)
        return _inline(
            controller,
            "chain",
            lambda: _apply_define_chain(controller, chain, recompile=recompile),
        )

    def remove_chain(self, name: str, recompile: bool = False) -> None:
        """Deregister a service chain (idempotent)."""
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_remove_chain(name, recompile=recompile)
        return _inline(
            controller,
            "chain",
            lambda: _apply_remove_chain(controller, name, recompile=recompile),
        )

    def chains(self) -> Mapping[str, "ServiceChain"]:
        """The registered service chains, by name."""
        return dict(self._controller._chains)

    def chain_hop_ports(self) -> FrozenSet[str]:
        """Every physical port currently serving as a chain hop."""
        return frozenset(
            hop
            for chain in self._controller._chains.values()
            for hop in chain.hops
        )


class OpsFacet(_Facet):
    """Operational surface: health, metrics, quarantine, commit hooks
    (``controller.ops``)."""

    __slots__ = ()

    # -- health and metrics ------------------------------------------------

    def health(self) -> "HealthReport":
        """One consistent snapshot of the exchange's operational state.

        Works with or without the resilience layer attached; damping
        and update-error fields are simply empty without it.
        """
        return self._controller._health_snapshot()

    def metrics(self) -> Dict[str, Dict[str, Any]]:
        """A structured snapshot of every metric (JSON-friendly).

        Counters and histograms accumulate as events happen; sampled
        gauges (VNH pool occupancy, fast-path footprint) are refreshed
        at snapshot time so the view is internally consistent.
        """
        controller = self._controller
        controller._refresh_gauges()
        return controller.telemetry.snapshot()

    def metrics_text(self) -> str:
        """The same snapshot in Prometheus text exposition format."""
        controller = self._controller
        controller._refresh_gauges()
        return controller.telemetry.exposition()

    def churn(self) -> ChurnStats:
        """Cumulative fabric-reconciliation counters, structured.

        The delta committer's added/removed/retained/reprioritized
        totals plus the latest :class:`CommitReport` — read these
        instead of parsing ``metrics_text()`` for the
        ``sdx_fabric_rules_*`` series.
        """
        return self._controller.pipeline.committer.churn_stats()

    def last_commit(self) -> Optional[CommitReport]:
        """The most recent fabric commit's report (None before any)."""
        return self._controller.pipeline.committer.last_report

    # -- fast path ---------------------------------------------------------

    @property
    def fast_path_log(self) -> List["FastPathUpdate"]:
        """Every fast-path invocation since the last full compilation."""
        return list(self._controller._fast_path_log)

    # -- quarantine (fault-isolated compilation) ---------------------------

    def quarantined(self) -> Mapping[str, "QuarantineRecord"]:
        """Participants degraded to BGP-default forwarding, with diagnoses."""
        return dict(self._controller._quarantined)

    def release_quarantine(self, name: str, recompile: bool = True) -> bool:
        """Re-admit a quarantined participant's policies (operator action)."""
        controller = self._controller
        runtime = controller.runtime
        if runtime is not None:
            return runtime.submit_release_quarantine(name, recompile=recompile)
        return _inline(
            controller,
            "ops",
            lambda: _apply_release_quarantine(controller, name, recompile=recompile),
        )

    # -- verification (the repro.verify oracle) ----------------------------

    def verify(
        self,
        probes: int = 64,
        seed: int = 0,
        invariants: bool = True,
        budget: Optional[int] = None,
        focus: Optional[Iterable[IPv4Prefix]] = None,
    ) -> "CheckReport":
        """One differential + invariant pass over the installed tables.

        Samples ``probes`` router-faithful packets, diffs the compiled
        data plane against the reference interpreter, and sweeps the
        structural invariants (isolation, BGP consistency, loop freedom,
        VNH state).  Inspect ``.ok`` / ``summary()`` on the returned
        :class:`~repro.verify.checker.CheckReport`; results also land in
        the ``sdx_verify_*`` metric family.

        ``budget`` caps the pass at exactly that many probes (overriding
        ``probes``) and ``focus`` concentrates sampling on a prefix set
        — together they replay a guarded commit's check precisely:
        ``ops.verify(budget=cfg.probe_budget, seed=incident.seed)``.
        """
        from repro.verify.checker import DifferentialChecker

        return DifferentialChecker(self._controller).check(
            probes=probes,
            seed=seed,
            invariants=invariants,
            budget=budget,
            focus=focus,
        )

    # -- commit hooks ------------------------------------------------------

    def add_commit_hook(self, hook: Callable[["CompilationResult"], None]) -> None:
        """Run ``hook`` inside every fabric-commit transaction.

        A raising hook aborts the commit and triggers rollback — the
        fault-injection harness uses this to exercise mid-commit
        failures; deployments could use it for external validation.
        """
        self._controller._commit_hooks.append(hook)

    def remove_commit_hook(self, hook: Callable[["CompilationResult"], None]) -> None:
        if hook in self._controller._commit_hooks:
            self._controller._commit_hooks.remove(hook)
