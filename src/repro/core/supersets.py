"""Superset VMAC encoding: masked-match state reduction for the fabric.

The per-FEC scheme of Section 4.2 spends one opaque VMAC — and at least
one fabric rule — per forwarding-equivalence class.  The superset
encoding (the scheme iSDX later built on the same idea) instead makes
the destination MAC a structured attribute vector, so a single *masked*
rule (OpenFlow ``dl_dst/mask``) matches an entire family of classes:

.. code-block:: none

    47        40 39        30 29           18 17         8 7        0
    [  marker  ][ superset  ][  positions    ][ next hop  ][ serial  ]

* **marker** — one locally-administered octet (``0x06``) distinguishing
  superset VMACs from both the per-FEC fallback block (``0x02:a5``) and
  participant interface MACs; every masked rule pins it, so masked
  matches can never capture foreign traffic.
* **superset id** — reachability bitsets are grouped into *supersets*
  (a superset's roster is the union of the member sets it hosts); the
  id selects which roster the position field is interpreted against.
* **positions** — one bit per roster slot: bit ``p`` is set iff the
  participant at position ``p`` announced the class.  An outbound
  policy ``fwd(B)`` becomes one masked rule per superset hosting ``B``
  (marker + superset id + B's position bit).
* **next hop** — the id of the class's best-route next-hop participant;
  default forwarding collapses to one masked rule per live next hop.
* **serial** — disambiguates classes that share every attribute field,
  preserving the VNH↔VMAC bijection.  Masked rules never test it.

Rosters only ever *grow* (positions are stable), so a routing change
touches one class, not the whole encoding.  A full recomputation —
clearing every superset and bumping :attr:`SupersetEncoder.epoch` so
cached encodings can be invalidated — happens only when the id space
itself overflows.  Classes that cannot be encoded at all (too many
announcers for one roster, a spent serial space, an exhausted next-hop
id space) *spill*: they draw an opaque VMAC from the per-FEC fallback
allocator and are matched exactly, never masked — graceful degradation,
counted for telemetry.
"""

from __future__ import annotations

import os
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.fec import FECTable, PrefixGroup
from repro.core.transforms import (
    RankedRoutesFn,
    ReachableFn,
    _group_needs_dstip,
    default_exception_rules,
    default_rules_for_group,
    delivery_rules_for_group,
    vmacify_outbound,
)
from repro.ixp.topology import IXPConfig, ParticipantSpec
from repro.netutils.mac import MACAddress, MACAllocator, MACMask
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.telemetry import MetricsRegistry

__all__ = [
    "MARKER_OCTET",
    "NEXTHOP_BITS",
    "POSITION_BITS",
    "SERIAL_BITS",
    "SUPERSET_BITS",
    "SupersetEncoder",
    "SupersetEncoding",
    "SupersetView",
    "default_delivery_classifier_superset",
    "default_forwarding_classifier_superset",
    "encoding_inputs",
    "vmac_mode_from_env",
    "vmacify_outbound_superset",
]

VMAC_MODES = ("fec", "superset")


def vmac_mode_from_env() -> str:
    """The ``REPRO_VMAC`` selection: ``fec`` (default) or ``superset``."""
    mode = os.environ.get("REPRO_VMAC", "fec").strip().lower() or "fec"
    if mode not in VMAC_MODES:
        raise ValueError(
            f"REPRO_VMAC={mode!r}: expected one of {', '.join(VMAC_MODES)}"
        )
    return mode

# -- bit budget ----------------------------------------------------------------
#
# 8 + 10 + 12 + 10 + 8 = 48: the whole destination MAC, nothing spare.
# The split trades roster width (12 announcers per superset) against id
# spaces (1024 supersets, 1023 next hops) — the shape of real IXP RIBs,
# where a prefix has a handful of announcers but an exchange has
# hundreds of members.

MARKER_OCTET = 0x06  # locally administered; 0x02:* blocks stay disjoint
SUPERSET_BITS = 10
POSITION_BITS = 12
NEXTHOP_BITS = 10
SERIAL_BITS = 8

_SERIAL_SHIFT = 0
_NEXTHOP_SHIFT = SERIAL_BITS
_POSITION_SHIFT = _NEXTHOP_SHIFT + NEXTHOP_BITS
_SUPERSET_SHIFT = _POSITION_SHIFT + POSITION_BITS
_MARKER_SHIFT = _SUPERSET_SHIFT + SUPERSET_BITS
assert _MARKER_SHIFT + 8 == 48, "VMAC attribute fields must fill 48 bits"

_MARKER_MASK = 0xFF << _MARKER_SHIFT
_SUPERSET_MASK = ((1 << SUPERSET_BITS) - 1) << _SUPERSET_SHIFT
_POSITION_FIELD_MASK = ((1 << POSITION_BITS) - 1) << _POSITION_SHIFT
_NEXTHOP_MASK = ((1 << NEXTHOP_BITS) - 1) << _NEXTHOP_SHIFT
_MARKER_VALUE = MARKER_OCTET << _MARKER_SHIFT

MAX_SUPERSETS = 1 << SUPERSET_BITS
MAX_SERIALS = 1 << SERIAL_BITS
#: next-hop id 0 is reserved for "no best route", so a masked next-hop
#: rule can never capture a class that has nowhere to go
MAX_NEXTHOPS = (1 << NEXTHOP_BITS) - 1


class SupersetEncoding(NamedTuple):
    """The attribute fields decoded from one superset VMAC."""

    superset_id: int
    position_mask: int
    nexthop_id: int
    serial: int


def encoding_inputs(
    fingerprint: Hashable,
) -> Tuple[FrozenSet[str], Optional[str]]:
    """Derive ``(announcers, best next hop)`` from a BGP fingerprint.

    The compiler's per-prefix fingerprint is the ranked tuple of
    ``(learned_from, next_hop, export_to)`` triples — exactly the
    information the encoder needs: who announced the class (the
    position bits) and whose route ranks first (the next-hop field).
    """
    triples: Sequence[Tuple] = fingerprint if isinstance(fingerprint, tuple) else ()
    members = frozenset(triple[0] for triple in triples)
    nexthop = triples[0][0] if triples else None
    return members, nexthop


class SupersetEncoder:
    """Allocates superset VMACs and the masked matchers that select them.

    The registry persists across compilations: rosters grow in place and
    issued encodings stay valid until :meth:`epoch <recompute>` changes.
    """

    def __init__(
        self,
        fallback: Optional[MACAllocator] = None,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._fallback = fallback if fallback is not None else MACAllocator()
        self._rosters: List[List[str]] = []
        self._roster_sets: List[Set[str]] = []
        self._positions: List[Dict[str, int]] = []
        self._nexthop_ids: Dict[str, int] = {}
        self._serials: Dict[Tuple[int, int, int], int] = {}
        #: bumped on every full recomputation; consumers caching
        #: encodings must discard entries from older epochs
        self.epoch = 0
        self.recomputes = 0
        self.spills = 0
        self._m_spills = self._m_recomputes = self._m_supersets = None
        if telemetry is not None:
            self._m_spills = telemetry.counter(
                "sdx_vmac_spills_total",
                "Classes that fell back to exact per-FEC VMACs",
            )
            self._m_recomputes = telemetry.counter(
                "sdx_superset_recomputes_total",
                "Full superset-registry recomputations",
            )
            self._m_supersets = telemetry.gauge(
                "sdx_supersets", "Live supersets in the encoder registry"
            )

    # -- registry ------------------------------------------------------------

    @property
    def superset_count(self) -> int:
        return len(self._rosters)

    def members_of(self, superset_id: int) -> Tuple[str, ...]:
        """The roster of one superset, in position order."""
        return tuple(self._rosters[superset_id])

    def position_of(self, superset_id: int, name: str) -> Optional[int]:
        """``name``'s position bit index inside one superset, if hosted."""
        if not 0 <= superset_id < len(self._positions):
            return None
        return self._positions[superset_id].get(name)

    def memberships(self, name: str) -> Tuple[Tuple[int, int], ...]:
        """Every ``(superset id, position)`` slot hosting ``name``."""
        found = []
        for superset_id, positions in enumerate(self._positions):
            position = positions.get(name)
            if position is not None:
                found.append((superset_id, position))
        return tuple(found)

    def nexthop_id(self, name: str) -> Optional[int]:
        """The id assigned to a next-hop participant, if any yet."""
        return self._nexthop_ids.get(name)

    def _assign_nexthop(self, name: str) -> Optional[int]:
        assigned = self._nexthop_ids.get(name)
        if assigned is not None:
            return assigned
        if len(self._nexthop_ids) >= MAX_NEXTHOPS:
            return None
        assigned = len(self._nexthop_ids) + 1  # 0 reserved: "no best route"
        self._nexthop_ids[name] = assigned
        return assigned

    def _new_superset(self, members: FrozenSet[str]) -> int:
        superset_id = len(self._rosters)
        roster = sorted(members)
        self._rosters.append(roster)
        self._roster_sets.append(set(roster))
        self._positions.append({name: index for index, name in enumerate(roster)})
        if self._m_supersets is not None:
            self._m_supersets.set(len(self._rosters))
        return superset_id

    def _extend(self, superset_id: int, members: FrozenSet[str]) -> None:
        roster = self._rosters[superset_id]
        roster_set = self._roster_sets[superset_id]
        positions = self._positions[superset_id]
        for name in sorted(members - roster_set):
            positions[name] = len(roster)
            roster.append(name)
            roster_set.add(name)

    def recompute(self) -> None:
        """Discard every superset and serial; start a new encoding epoch.

        Issued VMACs keep working in the data plane but no longer agree
        with the registry, so every consumer caching encodings must
        re-encode (the epoch bump is the signal).  Next-hop ids are
        *not* cleared — they are roster-independent and keeping them
        stable avoids churning the masked default-forwarding rules.
        """
        self._rosters = []
        self._roster_sets = []
        self._positions = []
        self._serials = {}
        self.epoch += 1
        self.recomputes += 1
        if self._m_recomputes is not None:
            self._m_recomputes.inc()
        if self._m_supersets is not None:
            self._m_supersets.set(0)

    def place(self, members: FrozenSet[str]) -> Optional[int]:
        """Find or make the superset hosting a reachability set.

        Preference order: an existing superset already covering the set;
        the best-overlapping superset whose roster can absorb it without
        exceeding the position width; a brand-new superset.  Only when
        the id space itself is full does the registry recompute.
        Returns ``None`` when the set is wider than one roster can be —
        the caller must spill.
        """
        if len(members) > POSITION_BITS:
            return None
        best = None
        best_overlap = -1
        for superset_id, roster_set in enumerate(self._roster_sets):
            if members <= roster_set:
                return superset_id
            if len(roster_set | members) <= POSITION_BITS:
                overlap = len(roster_set & members)
                if overlap > best_overlap:
                    best = superset_id
                    best_overlap = overlap
        if best is not None and best_overlap > 0:
            self._extend(best, members)
            return best
        if len(self._rosters) < MAX_SUPERSETS:
            # overlap-free sets get a fresh superset while ids last:
            # tight rosters keep position bits (and masks) meaningful
            return self._new_superset(members)
        if best is not None:
            self._extend(best, members)
            return best
        self.recompute()
        return self._new_superset(members)

    # -- encoding ------------------------------------------------------------

    def _spill(self) -> MACAddress:
        self.spills += 1
        if self._m_spills is not None:
            self._m_spills.inc()
        return self._fallback.allocate()

    def encode(
        self, members: FrozenSet[str], nexthop: Optional[str]
    ) -> MACAddress:
        """The VMAC for a class announced by ``members``, best via ``nexthop``.

        Every call returns a distinct address (the serial field, or the
        fallback allocator when the class spills), so reallocation after
        a change always forces routers to re-ARP.
        """
        if not members:
            return self._spill()
        superset_id = self.place(members)
        if superset_id is None:
            return self._spill()
        if nexthop is None:
            nexthop_id: Optional[int] = 0
        else:
            nexthop_id = self._assign_nexthop(nexthop)
            if nexthop_id is None:
                return self._spill()
        positions = self._positions[superset_id]
        position_mask = 0
        for name in members:
            position_mask |= 1 << positions[name]
        key = (superset_id, position_mask, nexthop_id)
        serial = self._serials.get(key, 0)
        if serial >= MAX_SERIALS:
            return self._spill()
        self._serials[key] = serial + 1
        value = (
            _MARKER_VALUE
            | (superset_id << _SUPERSET_SHIFT)
            | (position_mask << _POSITION_SHIFT)
            | (nexthop_id << _NEXTHOP_SHIFT)
            | serial
        )
        return MACAddress(value)

    @staticmethod
    def is_superset_vmac(address: "int | MACAddress") -> bool:
        """True when an address carries the superset marker octet."""
        return (int(address) >> _MARKER_SHIFT) == MARKER_OCTET

    @staticmethod
    def decode(address: "int | MACAddress") -> Optional[SupersetEncoding]:
        """The attribute fields of a superset VMAC; ``None`` for others."""
        value = int(address)
        if (value >> _MARKER_SHIFT) != MARKER_OCTET:
            return None
        return SupersetEncoding(
            superset_id=(value & _SUPERSET_MASK) >> _SUPERSET_SHIFT,
            position_mask=(value & _POSITION_FIELD_MASK) >> _POSITION_SHIFT,
            nexthop_id=(value & _NEXTHOP_MASK) >> _NEXTHOP_SHIFT,
            serial=value & ((1 << SERIAL_BITS) - 1),
        )

    # -- masked matchers ------------------------------------------------------

    def policy_match(self, superset_id: int, position: int) -> MACMask:
        """Matcher for *classes in this superset announced by position*.

        The outbound-policy rule shape: marker + superset id + one
        position bit; next-hop and serial bits are don't-care.
        """
        bit = 1 << (_POSITION_SHIFT + position)
        value = _MARKER_VALUE | (superset_id << _SUPERSET_SHIFT) | bit
        return MACMask(value, _MARKER_MASK | _SUPERSET_MASK | bit)

    def nexthop_match(self, name: str) -> Optional[MACMask]:
        """Matcher for *classes whose best route is via ``name``*.

        The default-forwarding rule shape: marker + next-hop id;
        superset, position, and serial bits are don't-care.  ``None``
        until the participant has been seen as a next hop.
        """
        nexthop_id = self._nexthop_ids.get(name)
        if nexthop_id is None:
            return None
        value = _MARKER_VALUE | (nexthop_id << _NEXTHOP_SHIFT)
        return MACMask(value, _MARKER_MASK | _NEXTHOP_MASK)

    def view(self) -> "SupersetView":
        """A read-only, process-portable snapshot of the registry.

        Compile shards receive the view, never the live encoder: a shard
        is a pure function of its inputs, and handing it the mutable
        registry would let a transform race a concurrent ``encode``.
        The snapshot carries the epoch so stale views are detectable.
        """
        return SupersetView(
            positions=tuple(dict(positions) for positions in self._positions),
            nexthop_ids=dict(self._nexthop_ids),
            epoch=self.epoch,
        )

    def __repr__(self) -> str:
        return (
            f"SupersetEncoder(supersets={len(self._rosters)}, "
            f"epoch={self.epoch}, spills={self.spills})"
        )


class SupersetView:
    """Frozen read surface of a :class:`SupersetEncoder` registry.

    Implements exactly the methods the superset-mode transformations
    consult (:meth:`position_of`, :meth:`policy_match`,
    :meth:`nexthop_id`, :meth:`nexthop_match`, :meth:`decode`), so the
    transforms accept either a live encoder or a view.
    """

    __slots__ = ("_positions", "_nexthop_ids", "epoch")

    def __init__(
        self,
        positions: Tuple[Dict[str, int], ...],
        nexthop_ids: Dict[str, int],
        epoch: int,
    ) -> None:
        self._positions = positions
        self._nexthop_ids = nexthop_ids
        self.epoch = epoch

    def position_of(self, superset_id: int, name: str) -> Optional[int]:
        if not 0 <= superset_id < len(self._positions):
            return None
        return self._positions[superset_id].get(name)

    def nexthop_id(self, name: str) -> Optional[int]:
        return self._nexthop_ids.get(name)

    is_superset_vmac = staticmethod(SupersetEncoder.is_superset_vmac)
    decode = staticmethod(SupersetEncoder.decode)

    def policy_match(self, superset_id: int, position: int) -> MACMask:
        bit = 1 << (_POSITION_SHIFT + position)
        value = _MARKER_VALUE | (superset_id << _SUPERSET_SHIFT) | bit
        return MACMask(value, _MARKER_MASK | _SUPERSET_MASK | bit)

    def nexthop_match(self, name: str) -> Optional[MACMask]:
        nexthop_id = self._nexthop_ids.get(name)
        if nexthop_id is None:
            return None
        value = _MARKER_VALUE | (nexthop_id << _NEXTHOP_SHIFT)
        return MACMask(value, _MARKER_MASK | _NEXTHOP_MASK)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SupersetView):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self._positions == other._positions
            and self._nexthop_ids == other._nexthop_ids
        )

    def __repr__(self) -> str:
        return f"SupersetView(supersets={len(self._positions)}, epoch={self.epoch})"


# -- superset-mode transformations ---------------------------------------------
#
# Masked counterparts of the Section 4.1 transformations in
# :mod:`repro.core.transforms`.  Each emits a masked rule only when it
# is provably equivalent to the exact per-class rules it replaces, and
# falls back to the exact shape otherwise — so both encodings always
# compile to the same forwarding function.


def _live_carriers(
    fec_table: FECTable, encoder: SupersetEncoder
) -> Tuple[Dict[Tuple[int, int], Set[int]], Dict[int, Optional[SupersetEncoding]]]:
    """Index the live encodings: which groups carry which position bits."""
    carriers: Dict[Tuple[int, int], Set[int]] = {}
    decodings: Dict[int, Optional[SupersetEncoding]] = {}
    for group in fec_table.affected_groups:
        encoding = encoder.decode(group.vnh.hardware)
        decodings[group.group_id] = encoding
        if encoding is None:
            continue
        for position in range(POSITION_BITS):
            if (encoding.position_mask >> position) & 1:
                carriers.setdefault((encoding.superset_id, position), set()).add(
                    group.group_id
                )
    return carriers, decodings


def vmacify_outbound_superset(
    classifier: Classifier,
    participants: FrozenSet[str],
    reachable: ReachableFn,
    fec_table: FECTable,
    encoder: SupersetEncoder,
) -> Classifier:
    """BGP-consistency filters as *masked* VMAC matches where possible.

    A rule forwarding to participant ``B`` compiles to one masked rule
    per superset hosting ``B`` — but only when the sender's eligible
    classes in that superset are exactly the live classes carrying
    ``B``'s position bit (otherwise a masked match would steer classes
    the sender may not reach, so those classes keep exact rules).
    Multicast and mixed virtual/physical rules keep the exact encoding.
    """
    carriers, decodings = _live_carriers(fec_table, encoder)
    by_id = {group.group_id: group for group in fec_table.affected_groups}
    rewritten: List[Rule] = []
    for rule in classifier.rules:
        virtual_actions = [
            action for action in rule.actions if action.output_port in participants
        ]
        if rule.is_drop or not virtual_actions:
            rewritten.append(rule)
            continue
        other_actions = [
            action for action in rule.actions if action.output_port not in participants
        ]
        if len(virtual_actions) > 1 or other_actions:
            rewritten.extend(
                vmacify_outbound(
                    Classifier([rule]), participants, reachable, fec_table
                ).rules
            )
            continue
        action = virtual_actions[0]
        target = action.output_port
        constraint = rule.match.constraints.get("dstip")
        eligible = reachable(target)
        if constraint is not None:
            eligible = frozenset(
                prefix for prefix in eligible if prefix.overlaps(constraint)
            )
        exact_groups: List[PrefixGroup] = []
        by_superset: Dict[int, Set[int]] = {}
        for group in fec_table.groups_covering(eligible):
            if not group.is_affected:
                continue
            encoding = decodings.get(group.group_id)
            if encoding is None:
                exact_groups.append(group)
            else:
                by_superset.setdefault(encoding.superset_id, set()).add(group.group_id)
        for superset_id in sorted(by_superset):
            selected = by_superset[superset_id]
            position = encoder.position_of(superset_id, target)
            if (
                position is not None
                and carriers.get((superset_id, position)) == selected
            ):
                scoped = rule.match.restrict(
                    "dstmac", encoder.policy_match(superset_id, position)
                )
                if scoped is not None:
                    rewritten.append(Rule(scoped, (action,)))
                continue
            exact_groups.extend(by_id[group_id] for group_id in selected)
        base_match = rule.match.without("dstip")
        for group in sorted(exact_groups, key=lambda group: group.group_id):
            scoped = base_match.restrict("dstmac", group.vnh.hardware)
            if scoped is None:
                continue
            if _group_needs_dstip(group, constraint):
                scoped = scoped.restrict("dstip", constraint)
                if scoped is None:
                    continue
            rewritten.append(Rule(scoped, (action,)))
    return Classifier(rewritten).optimized()


def default_forwarding_classifier_superset(
    config: IXPConfig,
    fec_table: FECTable,
    ranked_routes: RankedRoutesFn,
    encoder: SupersetEncoder,
) -> Classifier:
    """Default forwarding as one masked rule per live next hop.

    Classes whose encoded next-hop field agrees with their current best
    route are served by a single shared masked rule per next-hop
    participant; export-scoped exception rules (and any class that
    spilled or whose encoding is stale) keep the exact per-class shape,
    placed *above* the masked rules so exact always wins.
    """
    rules: List[Rule] = []
    masked: Dict[str, MACMask] = {}
    for group in fec_table.affected_groups:
        ranked = ranked_routes(group)
        if not ranked:
            continue
        top = ranked[0]
        encoding = encoder.decode(group.vnh.hardware)
        nexthop_id = encoder.nexthop_id(top.learned_from)
        if encoding is None or nexthop_id is None or encoding.nexthop_id != nexthop_id:
            rules.extend(default_rules_for_group(config, group, ranked))
            continue
        rules.extend(default_exception_rules(config, group, ranked))
        if top.learned_from not in masked:
            mask = encoder.nexthop_match(top.learned_from)
            if mask is not None:
                masked[top.learned_from] = mask
    for name in sorted(masked):
        rules.append(Rule(HeaderMatch(dstmac=masked[name]), (Action(port=name),)))
    for participant in config.participants():
        for port in participant.ports:
            rules.append(
                Rule(
                    HeaderMatch(dstmac=port.hardware),
                    (Action(port=participant.name),),
                )
            )
    return Classifier(rules)


def default_delivery_classifier_superset(
    participant: ParticipantSpec,
    fec_table: FECTable,
    ranked_routes: RankedRoutesFn,
    encoder: SupersetEncoder,
) -> Classifier:
    """Default delivery as one masked rule per (superset, own position).

    Valid only when every live class in a superset carrying the
    participant's position bit is delivered out the *same* interface;
    supersets where ports differ (multi-homing splits, stale bits,
    spilled classes) fall back to exact per-class delivery rules.
    """
    rules: List[Rule] = [
        Rule(HeaderMatch(dstmac=port.hardware), (Action(port=port.port_id),))
        for port in participant.ports
    ]
    if participant.is_remote:
        return Classifier(rules)
    by_id = {group.group_id: group for group in fec_table.affected_groups}
    exact_groups: List[PrefixGroup] = []
    per_superset: Dict[int, Dict[int, Optional[object]]] = {}
    for group in fec_table.affected_groups:
        ranked = ranked_routes(group)
        announcing = next(
            (route for route in ranked if route.learned_from == participant.name),
            None,
        )
        encoding = encoder.decode(group.vnh.hardware)
        if encoding is None:
            if announcing is not None:
                exact_groups.append(group)
            continue
        position = encoder.position_of(encoding.superset_id, participant.name)
        carried = position is not None and (encoding.position_mask >> position) & 1
        if not carried:
            if announcing is not None:
                # stale bits: the class predates this announcement
                exact_groups.append(group)
            continue
        port = None
        if announcing is not None:
            port = participant.port_for_address(announcing.next_hop)
        per_superset.setdefault(encoding.superset_id, {})[group.group_id] = port
    for superset_id in sorted(per_superset):
        entries = per_superset[superset_id]
        ports = set(entries.values())
        uniform = ports.pop() if len(ports) == 1 else None
        if uniform is not None:
            position = encoder.position_of(superset_id, participant.name)
            rules.append(
                Rule(
                    HeaderMatch(
                        dstmac=encoder.policy_match(superset_id, position)
                    ),
                    (Action(port=uniform.port_id, dstmac=uniform.hardware),),
                )
            )
            continue
        for group_id in sorted(entries):
            port = entries[group_id]
            if port is None:
                continue
            rules.append(
                Rule(
                    HeaderMatch(dstmac=by_id[group_id].vnh.hardware),
                    (Action(port=port.port_id, dstmac=port.hardware),),
                )
            )
    for group in exact_groups:
        rules.extend(
            delivery_rules_for_group(participant, group, ranked_routes(group))
        )
    return Classifier(rules)
