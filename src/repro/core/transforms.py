"""The four policy transformations of Section 4.1, at classifier level.

The paper compiles participant policies "through a sequence of
syntactic transformations": isolation, BGP-consistency augmentation,
default forwarding, and virtual-topology composition.  We perform them
on compiled classifiers rather than policy ASTs — the two views are
equivalent (classifiers *are* the normal form of the policy algebra),
and the classifier view lets the Section 4.2 state-reduction rewrite
(destination-prefix matches → VMAC matches) happen in the same pass
that inserts the BGP reachability filters.

Terminology used throughout:

* a *virtual location* is a participant name (``"B"``): the packet has
  been handed to B's virtual switch but not yet placed on a wire;
* a *physical location* is a fabric port id (``"B1"``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bgp.messages import Route
from repro.core.fec import FECTable, PrefixGroup
from repro.ixp.topology import IXPConfig, ParticipantSpec
from repro.netutils.ip import IPv4Prefix
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule

__all__ = [
    "concat_disjoint",
    "default_delivery_classifier",
    "default_exception_rules",
    "default_forwarding_classifier",
    "default_rules_for_group",
    "delivery_rules_for_group",
    "extract_policy_groups",
    "isolate",
    "passthrough_classifier",
    "rewrite_inbound_delivery",
    "vmacify_outbound",
]

ReachableFn = Callable[[str], FrozenSet[IPv4Prefix]]
RankedRoutesFn = Callable[[PrefixGroup], Tuple[Route, ...]]


# -- transformation 1: isolation ----------------------------------------------


def isolate(classifier: Classifier, locations: Sequence[Any]) -> Classifier:
    """Restrict a policy to packets located at one of ``locations``.

    This is the paper's automatic ``match(port=...)`` augmentation: an
    outbound policy is pinned to the participant's physical ports, an
    inbound policy to its virtual switch.  Rules already carrying a
    conflicting port constraint vanish.
    """
    rules: List[Rule] = []
    for rule in classifier.rules:
        for location in locations:
            scoped = rule.match.restrict("port", location)
            if scoped is not None:
                rules.append(Rule(scoped, rule.actions))
    return Classifier(rules).optimized()


# -- transformation 2 + state reduction: BGP filters as VMAC matches -----------


def extract_policy_groups(
    classifier: Classifier,
    participants: FrozenSet[str],
    reachable: ReachableFn,
) -> List[FrozenSet[IPv4Prefix]]:
    """Pass 1 of the FEC computation: the prefix sets a policy overrides.

    For every forwarding action targeting a participant ``N``, the
    overridden set is the portion of ``N``'s exported prefixes that the
    rule's destination constraint can select.
    """
    groups: Dict[FrozenSet[IPv4Prefix], None] = {}
    for rule in classifier.rules:
        constraint = rule.match.constraints.get("dstip")
        for action in rule.actions:
            target = action.output_port
            if target not in participants:
                continue
            eligible = reachable(target)
            if constraint is not None:
                eligible = frozenset(
                    prefix for prefix in eligible if prefix.overlaps(constraint)
                )
            if eligible:
                groups.setdefault(eligible)
    return list(groups)


def _group_needs_dstip(group: PrefixGroup, constraint: Optional[IPv4Prefix]) -> bool:
    """Keep the dstip constraint when it is finer than the group's prefixes.

    A packet tagged with the group's VMAC has a destination inside one
    of the group's prefixes; the constraint is redundant exactly when it
    covers every such prefix.
    """
    if constraint is None:
        return False
    return not all(constraint.contains(prefix) for prefix in group.prefixes)


def vmacify_outbound(
    classifier: Classifier,
    participants: FrozenSet[str],
    reachable: ReachableFn,
    fec_table: FECTable,
) -> Classifier:
    """Apply BGP-consistency filters, encoded as VMAC matches.

    Every rule that forwards to a participant ``N`` is replaced by one
    rule per forwarding-equivalence class it may legitimately steer —
    matching the class's VMAC instead of (typically) the destination
    prefix.  This is simultaneously Section 4.1's "enforcing consistency
    with BGP advertisements" and Section 4.2's data-plane state
    reduction.  Rules forwarding only to physical locations pass through
    unchanged.
    """
    rewritten: List[Rule] = []
    for rule in classifier.rules:
        if rule.is_drop:
            rewritten.append(rule)
            continue
        virtual_actions = [
            action for action in rule.actions if action.output_port in participants
        ]
        other_actions = [
            action for action in rule.actions if action.output_port not in participants
        ]
        if not virtual_actions:
            rewritten.append(rule)
            continue
        constraint = rule.match.constraints.get("dstip")
        groups_for_action: Dict[Action, List[PrefixGroup]] = {}
        ordered_groups: Dict[int, PrefixGroup] = {}
        for action in virtual_actions:
            eligible = reachable(action.output_port)
            if constraint is not None:
                eligible = frozenset(
                    prefix for prefix in eligible if prefix.overlaps(constraint)
                )
            groups = [
                group
                for group in fec_table.groups_covering(eligible)
                if group.is_affected
            ]
            groups_for_action[action] = groups
            for group in groups:
                ordered_groups.setdefault(group.group_id, group)
        base_match = rule.match.without("dstip")
        for group_id in sorted(ordered_groups):
            group = ordered_groups[group_id]
            actions: Set[Action] = {
                action
                for action in virtual_actions
                if group in groups_for_action[action]
            }
            actions.update(other_actions)
            scoped = base_match.restrict("dstmac", group.vnh.hardware)
            if scoped is None:
                continue
            if _group_needs_dstip(group, constraint):
                scoped = scoped.restrict("dstip", constraint)
                if scoped is None:
                    continue
            rewritten.append(Rule(scoped, actions))
        if other_actions:
            # Packets whose destination is not deliverable through any
            # virtual target still receive the physical-location copies.
            rewritten.append(Rule(rule.match, other_actions))
    return Classifier(rewritten).optimized()


# -- transformation 3: default forwarding via the best BGP route --------------


def _best_for(ranked: Tuple[Route, ...], participant: str) -> Optional[Route]:
    """The decision-process outcome for one participant, from the ranking."""
    for route in ranked:
        if route.learned_from != participant and route.exported_to(participant):
            return route
    return None


def default_exception_rules(
    config: IXPConfig, group: PrefixGroup, ranked: Tuple[Route, ...]
) -> List[Rule]:
    """Port-scoped exceptions to one FEC's shared default rule.

    When the top route carries an export scope, participants outside it
    get exception rules steering along their own best route; these sit
    above the shared (sender-independent) rule regardless of whether
    that rule matches the class exactly or by attribute mask.
    """
    rules: List[Rule] = []
    if not ranked:
        return rules
    top = ranked[0]
    if top.export_to is None:
        return rules
    for participant in config.participants():
        if participant.name == top.learned_from or participant.is_remote:
            continue
        best = _best_for(ranked, participant.name)
        if best is None or best is top:
            continue
        for port in participant.ports:
            rules.append(
                Rule(
                    HeaderMatch(port=port.port_id, dstmac=group.vnh.hardware),
                    (Action(port=best.learned_from),),
                )
            )
    return rules


def default_rules_for_group(
    config: IXPConfig, group: PrefixGroup, ranked: Tuple[Route, ...]
) -> List[Rule]:
    """First-stage default rules steering one FEC along BGP best routes.

    Usually a single sender-independent rule: the FEC's VMAC forwards to
    the globally best next-hop participant.  When the top route carries
    an export scope, participants outside it get port-scoped exception
    rules (their own best route), placed above the shared rule.
    """
    rules: List[Rule] = []
    if not ranked:
        return rules
    top = ranked[0]
    rules.extend(default_exception_rules(config, group, ranked))
    rules.append(
        Rule(
            HeaderMatch(dstmac=group.vnh.hardware),
            (Action(port=top.learned_from),),
        )
    )
    return rules


def delivery_rules_for_group(
    participant: ParticipantSpec, group: PrefixGroup, ranked: Tuple[Route, ...]
) -> List[Rule]:
    """Second-stage delivery rules for one FEC at one announcing participant.

    Traffic tagged with the group's VMAC that reaches the participant's
    virtual switch leaves through the port whose interface announced the
    class, with the destination MAC rewritten to that interface's
    physical address.  Remote announcers produce no rules — their
    inbound policy must claim the traffic.
    """
    announcing_route = next(
        (route for route in ranked if route.learned_from == participant.name),
        None,
    )
    if announcing_route is None:
        return []
    port = participant.port_for_address(announcing_route.next_hop)
    if port is None:
        return []
    return [
        Rule(
            HeaderMatch(dstmac=group.vnh.hardware),
            (Action(port=port.port_id, dstmac=port.hardware),),
        )
    ]


def default_forwarding_classifier(
    config: IXPConfig,
    fec_table: FECTable,
    ranked_routes: RankedRoutesFn,
) -> Classifier:
    """The shared ``def`` policy: send unclaimed traffic along BGP best routes.

    Because every participant's router tags packets with the MAC that
    encodes its own best route (a VMAC for policy-affected classes, the
    announcing interface's physical MAC otherwise), default forwarding
    is almost entirely *sender-independent*:

    * one rule per affected FEC, matching the class VMAC and forwarding
      to the class's globally best next-hop participant — plus, where
      export scoping makes some participant's best route differ,
      per-port exception rules placed above the shared rule;
    * one rule per foreign physical port MAC, forwarding to the owning
      participant — this covers every unaffected (pure-BGP) prefix.
    """
    rules: List[Rule] = []
    for group in fec_table.affected_groups:
        rules.extend(default_rules_for_group(config, group, ranked_routes(group)))
    for participant in config.participants():
        for port in participant.ports:
            rules.append(
                Rule(
                    HeaderMatch(dstmac=port.hardware),
                    (Action(port=participant.name),),
                )
            )
    return Classifier(rules)


def default_delivery_classifier(
    participant: ParticipantSpec,
    fec_table: FECTable,
    ranked_routes: RankedRoutesFn,
) -> Classifier:
    """The participant's default delivery policy (second half of ``defP``).

    Places packets on the participant's physical ports: physical-MAC
    tagged traffic goes straight out the matching port; VMAC-tagged
    (policy-diverted or default) traffic is delivered out the port whose
    interface announced the class, with the destination MAC rewritten to
    that interface's physical address so the router accepts the frame.
    """
    rules: List[Rule] = []
    for port in participant.ports:
        rules.append(
            Rule(HeaderMatch(dstmac=port.hardware), (Action(port=port.port_id),))
        )
    if participant.is_remote:
        return Classifier(rules)
    for group in fec_table.affected_groups:
        rules.extend(delivery_rules_for_group(participant, group, ranked_routes(group)))
    return Classifier(rules)


# -- inbound policy delivery rewriting ------------------------------------------


def rewrite_inbound_delivery(classifier: Classifier, config: IXPConfig) -> Classifier:
    """Rewrite physical-port forwards to also set the interface MAC.

    An inbound policy says ``fwd("B1")``; the frame that leaves the
    fabric must carry B1's interface MAC or B's router will discard it.
    The paper performs the same rewrite inside its default policies; we
    extend it to every explicitly selected physical port.
    """
    port_macs = {port.port_id: port.hardware for port in config.physical_ports()}
    rules: List[Rule] = []
    for rule in classifier.rules:
        actions: List[Action] = []
        for action in rule.actions:
            target = action.output_port
            if target in port_macs and action.get("dstmac") is None:
                actions.append(action.then(Action(dstmac=port_macs[target])))
            else:
                actions.append(action)
        rules.append(Rule(rule.match, actions))
    return Classifier(rules)


# -- transformation 4 helpers: composition plumbing -----------------------------


def concat_disjoint(classifiers: Iterable[Classifier]) -> Classifier:
    """Union of classifiers known to claim pairwise-disjoint flow spaces.

    This is the Section 4.3.1 optimization "most SDX policies are
    disjoint": after isolation each participant's policy matches on its
    own ports, so parallel composition degenerates to concatenation —
    no cross-product rules are ever needed.
    """
    rules: List[Rule] = []
    for classifier in classifiers:
        rules.extend(classifier.rules)
    return Classifier(rules)


def passthrough_classifier(config: IXPConfig) -> Classifier:
    """Second-stage rules that let physically-located packets egress.

    Outbound policies may target a physical port directly (the
    middlebox-steering idiom ``fwd("E1")``); such packets arrive at the
    second composition stage already placed, and these rules emit them
    with the destination MAC of the receiving interface.
    """
    rules: List[Rule] = []
    for port in config.physical_ports():
        rules.append(
            Rule(
                HeaderMatch(port=port.port_id),
                (Action(port=port.port_id, dstmac=port.hardware),),
            )
        )
    return Classifier(rules)
