"""The SDX controller (Figure 3): route server + policy compiler + runtime.

:class:`SDXController` is the system's public face.  It owns

* the :class:`~repro.bgp.route_server.RouteServer` participants peer with,
* the :class:`~repro.core.compiler.SDXCompiler` pipeline,
* the physical :class:`~repro.dataplane.switch.SDNSwitch` and its flow table,
* the ARP responder that maps virtual next-hops to virtual MACs,
* the :class:`~repro.core.incremental.FastPathEngine` reacting to BGP updates,

and the bookkeeping that ties them together: participant registration,
policy storage, prefix origination, re-advertisement with VNH rewriting,
and pushing routes into attached border routers.

The public API is *faceted* (see :mod:`repro.core.facets`):
``controller.routing`` for the BGP side, ``controller.policy`` for
policy and chain management, ``controller.ops`` for health, metrics,
quarantine, and commit hooks.  The historical flat methods are gone —
the facets are the supported surface.

The control plane runs in one of two modes (``REPRO_RUNTIME`` or the
``runtime_mode=`` knob): ``inline`` executes every facet call
synchronously, while ``eventloop`` attaches a
:class:`~repro.runtime.runtime.ControlPlaneRuntime` whose cooperative
scheduler pipelines the update→compile→commit→verify path.  Both run
the same apply bodies, so their flow tables are byte-identical.

Typical use::

    controller = SDXController(config)
    a = controller.register_participant("A")
    ...
    a.set_policies(outbound=match(dstport=80) >> fwd("B"))
    controller.routing.process_update(update)  # BGP updates stream in
    controller.run_background_recompilation()  # periodic re-optimization
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.bgp.messages import Announcement
from repro.bgp.route_server import BestPathChange, RouteServer
from repro.core.compiler import (
    CompilationOptions,
    CompilationResult,
    SDXCompiler,
)
from repro.core.facets import OpsFacet, PolicyFacet, RoutingFacet
from repro.core.incremental import FastPathEngine, FastPathUpdate
from repro.core.participant import ParticipantHandle, SDXPolicySet
from repro.core.config import SDXConfig
from repro.core.supersets import SupersetEncoder
from repro.core.transforms import rewrite_inbound_delivery
from repro.core.vmac import VirtualNextHopAllocator
from repro.dataplane.arp import ARPService
from repro.dataplane.flowtable import FlowRule
from repro.dataplane.reconcile import ChurnStats, CommitReport
from repro.guard import (
    AdmissionConfig,
    AdmissionController,
    CommitGuard,
    GuardConfig,
)
from repro.dataplane.router import BorderRouter
from repro.dataplane.switch import SDNSwitch
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.pipeline import CompilationPipeline, ExecutionBackend
from repro.pipeline.stages import BASE_COOKIE, BASE_PRIORITY
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.packet import Packet
from repro.resilience.health import HealthReport, QuarantineRecord
from repro.runtime import ControlPlaneRuntime, RuntimeConfig
from repro.telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.incremental import FastPathUpdate as _FastPathUpdate
    from repro.resilience import ResilienceCoordinator
    from repro.sim.clock import Simulator

__all__ = [
    "BASE_COOKIE",
    "BASE_PRIORITY",
    "ChurnStats",
    "CommitReport",
    "PacketTrace",
    "SDXController",
]


class PacketTrace(NamedTuple):
    """One forwarding decision, explained (see ``trace_packet``)."""

    packet: "Packet"
    in_port: str
    rule: Optional["FlowRule"]
    provenance: str
    outputs: FrozenSet["Packet"]

    @property
    def dropped(self) -> bool:
        return not self.outputs

    def egress_ports(self) -> FrozenSet[str]:
        """The fabric ports the traced packet would leave through."""
        return frozenset(
            out.get("port") for out in self.outputs if out.get("port") is not None
        )

    def __repr__(self) -> str:
        if self.rule is None:
            return f"PacketTrace(in={self.in_port}, no matching rule -> drop)"
        ports = ", ".join(sorted(map(str, self.egress_ports()))) or "drop"
        return (
            f"PacketTrace(in={self.in_port}, via={self.provenance}, "
            f"priority={self.rule.priority} -> {ports})"
        )

class SDXController:
    """Facade over the staged compilation pipeline (``repro.pipeline``).

    The controller owns registration, policy/chain/origination storage,
    and the public API; compilation, shard caching, BGP ingress
    batching, and fabric commits live in
    :class:`~repro.pipeline.pipeline.CompilationPipeline`.
    """

    def __init__(
        self,
        config: IXPConfig,
        options: CompilationOptions = CompilationOptions(),
        fast_path_enabled: Optional[bool] = None,
        arp: Optional[ARPService] = None,
        ownership: Optional["OwnershipRegistry"] = None,
        route_server_asn: Optional[int] = None,
        backend: Optional[ExecutionBackend] = None,
        guard: Optional[GuardConfig] = None,
        admission: Optional[AdmissionConfig] = None,
        vmac_mode: Optional[str] = None,
        dataplane_mode: Optional[str] = None,
        runtime_mode: Optional[str] = None,
        runtime_config: Optional[RuntimeConfig] = None,
        runtime_clock: Optional["Simulator"] = None,
        sdx: Optional[SDXConfig] = None,
    ) -> None:
        self.config = config
        self.ownership = ownership
        self.options = options
        # Knob resolution happens in exactly one place: the per-knob
        # keyword arguments overlay onto the ``sdx`` config (explicit
        # argument wins), then every still-unset field resolves from
        # its REPRO_* environment variable, then its default.
        sdx = (sdx if sdx is not None else SDXConfig()).overlay(
            vmac_mode=vmac_mode,
            dataplane_mode=dataplane_mode,
            backend=backend,
            runtime_mode=runtime_mode,
            runtime_config=runtime_config,
            guard=guard,
            admission=admission,
            fast_path_enabled=fast_path_enabled,
        )
        #: the resolved knob set (no ``None`` left in the mode fields)
        self.sdx: SDXConfig = sdx.resolved()
        #: one registry per controller; every subsystem reports into it
        self.telemetry = MetricsRegistry()
        # With a route-server ASN, announcements may steer their export
        # scope via the standard (0, peer) / (rs, peer) communities.
        self.route_server = RouteServer(asn=route_server_asn)
        self.route_server.attach_telemetry(self.telemetry)
        #: VMAC encoding scheme: "fec" (one opaque VMAC per class) or
        #: "superset" (attribute-encoded VMACs, masked fabric rules)
        self.vmac_mode = self.sdx.vmac_mode
        #: dataplane layout: "single" (fully composed table 0) or
        #: "multitable" (stage-1 policy table chained into a stage-2
        #: VMAC table)
        self.dataplane_mode = self.sdx.dataplane_mode
        self.arp = arp if arp is not None else ARPService()
        self.allocator = VirtualNextHopAllocator(config.vnh_pool)
        self.arp.register(self.allocator.resolve)
        #: superset-mode VMAC registry (None in per-FEC mode).  Spilled
        #: classes draw from the allocator's own MAC source so spilled
        #: and fast-path per-prefix VMACs can never collide.
        self.superset_encoder: Optional[SupersetEncoder] = (
            SupersetEncoder(
                fallback=self.allocator.mac_source(), telemetry=self.telemetry
            )
            if self.vmac_mode == "superset"
            else None
        )
        self.compiler = SDXCompiler(
            config,
            self.route_server,
            options,
            telemetry=self.telemetry,
            vmac_mode=self.vmac_mode,
            encoder=self.superset_encoder,
        )
        self.switch = SDNSwitch(
            "sdx-fabric", ports=[port.port_id for port in config.physical_ports()]
        )
        self.switch.table.attach_telemetry(self.telemetry)
        self.fast_path = FastPathEngine(self)
        self._m_quarantines = self.telemetry.counter(
            "sdx_quarantine_total", "Participants quarantined during compilation"
        )
        self._m_vnh = self.telemetry.gauge(
            "sdx_vnh_allocated", "Live (VNH, VMAC) pairs in the allocator"
        )
        self._m_vnh_free = self.telemetry.gauge(
            "sdx_vnh_free", "Released VNH addresses awaiting reuse"
        )
        self._m_install_latency = self.telemetry.histogram(
            "sdx_update_install_seconds",
            "Update→install latency through the control plane",
            labels=("kind",),
            sample_window=4096,
        )
        self.fast_path_enabled = self.sdx.fast_path_enabled

        self._policies: Dict[str, SDXPolicySet] = {}
        self._chains: Dict[str, "ServiceChain"] = {}
        self._originated: Dict[str, Set[IPv4Prefix]] = {}
        self._handles: Dict[str, ParticipantHandle] = {}
        self._routers: Dict[str, BorderRouter] = {}
        self._last_result: Optional[CompilationResult] = None
        self._base_cookies: List[Tuple] = []
        self._advertised: Dict[Tuple[str, IPv4Prefix], IPv4Address] = {}
        self._fast_path_log: List[FastPathUpdate] = []
        self._quarantined: Dict[str, QuarantineRecord] = {}
        self._commit_hooks: List[Callable[[CompilationResult], None]] = []
        #: set by :meth:`enable_resilience`
        self.resilience: Optional["ResilienceCoordinator"] = None
        #: guarded commits (repro.guard): every fabric commit is followed
        #: by a budgeted sampled differential check inside the commit
        #: transaction; a mismatch rolls back, quarantines, and records
        #: an incident surfaced by ops.health().  None = unguarded.
        self.guard: Optional[CommitGuard] = (
            CommitGuard(self, self.sdx.guard) if self.sdx.guard is not None else None
        )
        #: the admission plane (repro.guard): per-participant rate limits
        #: and quotas enforced at the routing/policy facet entry points.
        #: None = unmetered.
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self, self.sdx.admission)
            if self.sdx.admission is not None
            else None
        )

        #: faceted public API (see :mod:`repro.core.facets`): thin views
        #: over this controller's state — the supported surface
        self.routing = RoutingFacet(self)
        self.policy = PolicyFacet(self)
        self.ops = OpsFacet(self)

        #: the staged compilation engine (shard cache, ingress, committer);
        #: the backend instance was resolved by ``SDXConfig`` (explicit
        #: arg > REPRO_BACKEND > serial)
        self.pipeline = CompilationPipeline(self, backend=self.sdx.backend)
        self._deferred_depth = 0
        self._deferred_pending = False

        #: control-plane runtime mode: "inline" (synchronous facet calls)
        #: or "eventloop" (cooperative pipelined scheduler)
        self.runtime_mode = self.sdx.runtime_mode
        #: the event-loop runtime (None in inline mode)
        self.runtime: Optional[ControlPlaneRuntime] = (
            ControlPlaneRuntime(self, config=self.sdx.runtime_config, clock=runtime_clock)
            if self.runtime_mode == "eventloop"
            else None
        )

        for participant in config.participants():
            self.route_server.add_peer(participant.name, asn=participant.asn)
        self.route_server.subscribe(self._on_best_path_changes)

    # -- participant lifecycle ----------------------------------------------

    def register_participant(self, name: str) -> ParticipantHandle:
        """Hand out the control channel for a configured participant."""
        spec = self.config.participant(name)
        handle = self._handles.get(name)
        if handle is None:
            handle = ParticipantHandle(spec, self)
            self._handles[name] = handle
        return handle

    def attach_router(self, name: str, router: BorderRouter) -> None:
        """Wire a border router to receive this participant's advertisements."""
        self.config.participant(name)  # validates the name
        self._routers[name] = router
        self._push_routes_to(name)

    # -- compilation ----------------------------------------------------------------

    def compile(self) -> CommitReport:
        """Full (optimal) compilation: rebuild and reconcile the base table.

        Also flushes any fast-path blocks — this is the "background
        re-optimization" endpoint of Section 4.3.2.

        Compilation runs on the staged pipeline: only shards whose
        inputs changed are recompiled (on the configured execution
        backend), and it is *fault-isolated* — a participant whose
        policy raises is quarantined (degraded to BGP default
        forwarding, with a recorded diagnosis) and the global compile
        proceeds without it.  Installation is *delta-reconciled* and
        *transactional*: only the minimal add/remove/reprioritize patch
        against the installed table is applied (unchanged rules keep
        their packet/byte counters), and a failure mid-commit rolls the
        fabric back to its exact pre-commit state rather than leaving
        it half-written.

        Returns the commit's :class:`CommitReport` — the added/removed/
        retained/reprioritized counts plus latency; unknown attributes
        delegate to the underlying
        :class:`~repro.core.compiler.CompilationResult`, so callers
        reading ``.segments`` / ``.fec_table`` / ``.stats`` are
        unaffected.

        Under the event-loop runtime an outside call submits a
        :class:`~repro.runtime.events.CompileEvent` and (auto-draining)
        returns the same report; re-entrant calls — from inside the
        loop's own machinery — run the synchronous body directly.
        """
        runtime = self.runtime
        if runtime is not None and not runtime.active:
            return runtime.submit_compile()
        result = self.pipeline.compile()
        return self._install(result)

    def _maybe_compile(self, recompile: bool) -> None:
        """Mutator epilogue: compile now, or once at deferred-batch exit."""
        if not recompile:
            return
        if self._deferred_depth > 0:
            self._deferred_pending = True
            return
        runtime = self.runtime
        if runtime is not None and runtime.applying:
            # Mid-apply on the runtime's ingress task: request a compile
            # job for the compile/commit tasks instead of recursing into
            # a synchronous compilation from inside the event loop.
            runtime.request_compile()
            return
        self.compile()

    @contextmanager
    def deferred_recompilation(self):
        """Batch mutators into exactly one compilation.

        Inside the block, every ``set_policies`` / ``define_chain`` /
        ``release_quarantine`` call that would have recompiled defers
        instead; one compile runs when the outermost block exits
        cleanly.  On an exception nothing is compiled — the dirty state
        survives for the next explicit or background compilation.

        ::

            with controller.deferred_recompilation():
                for name, policy_set in workload.items():
                    controller.policy.set_policies(name, policy_set)
            # exactly one compile has run here
        """
        self._deferred_depth += 1
        try:
            yield self
        finally:
            self._deferred_depth -= 1
            if (
                self._deferred_depth == 0
                and self._deferred_pending
                and sys.exc_info()[0] is None
            ):
                self._deferred_pending = False
                self.compile()

    def _install(self, result: CompilationResult) -> CommitReport:
        """Delta-reconciled two-phase commit of a compilation.

        Delegates to the pipeline's
        :class:`~repro.pipeline.stages.FabricCommitter`: the target
        table is diffed against the installed one and only the patch is
        applied; any exception inside the transaction — including a
        registered commit hook raising — restores the flow table
        (membership, order, and priorities), the fast-path state, and
        the advertisement map to their pre-commit values, then
        propagates.
        """
        return self.pipeline.committer.install(result)

    def run_background_recompilation(self) -> CommitReport:
        """The periodic Section 4.3.2 re-optimization endpoint.

        When nothing is dirty — no policy, chain, or route change since
        the last successful commit and no fast-path overrides pending —
        the (expensive) compilation is skipped entirely and counted on
        the ``sdx_pipeline_noop_total`` telemetry counter; the cached
        result is re-reconciled transactionally, which the delta engine
        recognises as a no-op patch — every installed rule is retained
        and per-segment traffic counters keep accumulating.  Otherwise
        this is a full :meth:`compile`.  Either way the commit's
        :class:`CommitReport` is returned.
        """
        if (
            self._last_result is not None
            and self.pipeline.idle
            and not self.fast_path.active_prefixes
        ):
            self.pipeline.count_noop()
            return self._install(self._last_result)
        return self.compile()

    @property
    def last_compilation(self) -> Optional[CompilationResult]:
        return self._last_result

    # -- fast path plumbing ------------------------------------------------------------

    def _on_best_path_changes(self, changes: List[BestPathChange]) -> None:
        self.pipeline.note_route_changes(changes)
        if self.pipeline.ingress.batching:
            self.pipeline.ingress.collect(changes)
            return
        self._dispatch_fast_path(changes)

    def _dispatch_fast_path(self, changes: List[BestPathChange]) -> None:
        if not self.fast_path_enabled or self._last_result is None:
            return
        if self.resilience is not None:
            changes = self.resilience.filter_changes(changes)
            if not changes:
                return
        results = self.fast_path.handle_changes(changes)
        self._fast_path_log.extend(results)

    def refresh_prefix(self, prefix: "IPv4Prefix | str") -> "_FastPathUpdate":
        """Force one prefix through the fast path (damping catch-up)."""
        result = self.fast_path.handle_prefix(IPv4Prefix(prefix))
        self._fast_path_log.append(result)
        return result

    def raw_outbound_classifier(self, name: str) -> Optional[Classifier]:
        """The participant's compiled (untransformed) outbound policy."""
        policy_set = self._policies.get(name)
        if policy_set is None or policy_set.outbound is None:
            return None
        return self.compiler._compile_ast(policy_set.outbound)

    def raw_inbound_classifier(self, name: str) -> Optional[Classifier]:
        """The participant's compiled (untransformed) inbound policy."""
        policy_set = self._policies.get(name)
        if policy_set is None or policy_set.inbound is None:
            return None
        return self.compiler._compile_ast(policy_set.inbound)

    def rewrite_delivery(self, classifier: Classifier) -> Classifier:
        """Apply the physical-port MAC rewrite to an inbound classifier."""
        return rewrite_inbound_delivery(classifier, self.config)

    def passthrough_block(self, port_id: str) -> Classifier:
        """The stage-2 egress rule for one physical port.

        Chain-hop ports keep the frame's VMAC (no MAC rewrite) so that
        mid-chain and post-chain forwarding can still read the tag.
        """
        port = next(
            port for port in self.config.physical_ports() if port.port_id == port_id
        )
        if port_id in self.policy.chain_hop_ports():
            egress = Action(port=port.port_id)
        else:
            egress = Action(port=port.port_id, dstmac=port.hardware)
        return Classifier([Rule(HeaderMatch(port=port.port_id), (egress,))])

    # -- advertisements and router feeds -----------------------------------------------

    def advertisements(self, name: str) -> List[Announcement]:
        """Best routes re-advertised to ``name``, next-hops VNH-rewritten."""
        out: List[Announcement] = []
        for announcement in self.route_server.advertisements(name):
            rewritten = self._advertised.get((name, announcement.prefix))
            if rewritten is not None:
                out.append(
                    Announcement(
                        announcement.prefix,
                        announcement.attributes.replace(next_hop=rewritten),
                    )
                )
            else:
                out.append(announcement)
        return out

    def advertised_next_hop(
        self, name: str, prefix: IPv4Prefix
    ) -> Optional[IPv4Address]:
        """The next-hop ``name`` is told for one prefix (VNH-rewritten).

        Single-prefix equivalent of :meth:`advertisements` — the guard's
        per-commit probes ask about one (participant, prefix) pair at a
        time, and materializing the participant's whole re-advertisement
        list for each probe would dominate the verification budget.
        ``None`` means the prefix is not advertised to ``name``.
        """
        best = self.route_server.best_route(name, prefix)
        if best is None:
            return None
        rewritten = self._advertised.get((name, prefix))
        return rewritten if rewritten is not None else best.attributes.next_hop

    def readvertise_prefix(
        self, prefix: IPv4Prefix, vnh_address: Optional[IPv4Address]
    ) -> None:
        """Update one prefix's advertised next-hop everywhere (fast path).

        ``vnh_address`` of ``None`` falls back to the best route's real
        next-hop (or withdraws the prefix from routers when no route
        remains).
        """
        for name in self.config.participant_names():
            best = self.route_server.best_route(name, prefix)
            if best is None:
                self._advertised.pop((name, prefix), None)
            else:
                self._advertised[(name, prefix)] = (
                    vnh_address if vnh_address is not None else best.attributes.next_hop
                )
            router = self._routers.get(name)
            if router is not None:
                if best is None:
                    router.withdraw_route(prefix)
                else:
                    router.install_route(prefix, self._advertised[(name, prefix)])

    def _push_routes_to(self, name: str) -> None:
        router = self._routers.get(name)
        if router is None:
            return
        desired: Dict[IPv4Prefix, IPv4Address] = {}
        loc_rib = self.route_server.loc_rib(name)
        for prefix, route in loc_rib.items():
            desired[prefix] = self._advertised.get(
                (name, prefix), route.attributes.next_hop
            )
        current = router.rib_snapshot()
        for prefix in current:
            if prefix not in desired:
                router.withdraw_route(prefix)
        for prefix, next_hop in desired.items():
            if current.get(prefix) != next_hop:
                router.install_route(prefix, next_hop)

    def _push_routes_to_all(self) -> None:
        for name in self._routers:
            self._push_routes_to(name)

    # -- resilience ---------------------------------------------------------------------

    def enable_resilience(
        self,
        clock: Optional["Simulator"] = None,
        **configs: Any,
    ) -> "ResilienceCoordinator":
        """Attach the resilience layer (liveness, damping, update guard).

        ``configs`` forwards to
        :class:`~repro.resilience.ResilienceCoordinator` (``liveness=``,
        ``damping=``, ``protection=``, ``reconnect_probe=``).  Updates
        then flow through the RFC 7606 guard, flap damping gates the
        fast path, and session hold/restart timers run on ``clock``.

        Under the event-loop runtime, resilience timers default onto the
        runtime's :class:`~repro.runtime.scheduler.TimerWheel`, so
        session liveness, damping decay, and admission retries all share
        one virtual clock that ``runtime.run_until`` advances.
        """
        from repro.resilience import ResilienceCoordinator

        explicit_clock = clock is not None
        if clock is None and self.runtime is not None:
            clock = self.runtime.timers
        self.resilience = ResilienceCoordinator(self, clock=clock, **configs)
        if explicit_clock:
            # Simulated deployments should report every duration on the
            # sim clock, so compile/fast-path timings and damping decay
            # share one time base.  Wall-clock runs (no explicit clock)
            # keep time.perf_counter; runtime-backed clocks follow the
            # runtime's own sim_time knob instead.
            sim = self.resilience.clock
            self.telemetry.set_time_source(lambda: sim.now)
        return self.resilience

    def _health_snapshot(self) -> HealthReport:
        """Backing implementation of ``controller.ops.health()``."""
        server = self.route_server
        sessions = {peer: server.session(peer).state.value for peer in server.peers()}
        stale = {
            peer: len(server.stale_prefixes(peer))
            for peer in server.peers()
            if server.stale_prefixes(peer)
        }
        damped: Tuple[Tuple[str, str], ...] = ()
        update_errors: Dict[str, Mapping[str, int]] = {}
        if self.resilience is not None:
            damped = tuple(
                (peer, str(prefix))
                for peer, prefix in self.resilience.damper.suppressed_routes()
            )
            update_errors = {
                peer: counters.snapshot()
                for peer, counters in self.resilience.guard.all_counters().items()
            }
        events = {
            "session_transitions": int(server._m_sessions.total())
            if server._m_sessions is not None
            else 0,
            "quarantines": int(self._m_quarantines.total()),
            "damping_suppressed": (
                self.resilience.suppressed_changes if self.resilience is not None else 0
            ),
        }
        if self.guard is not None:
            events["guard_rollbacks"] = int(self.guard._m_rollbacks.total())
        return HealthReport(
            sessions=sessions,
            quarantined=dict(self._quarantined),
            damped=damped,
            stale_routes=stale,
            update_errors=update_errors,
            fast_path_prefixes=len(self.fast_path.active_prefixes),
            flow_rules=len(self.switch.table),
            events=events,
            incidents=self.guard.incidents if self.guard is not None else (),
            admission=(
                self.admission.snapshot() if self.admission is not None else {}
            ),
            runtime=(
                self.runtime.health_info()
                if self.runtime is not None
                else {"mode": "inline"}
            ),
        )

    # -- telemetry -----------------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Re-sample gauges whose sources are polled, not event-driven."""
        self._m_vnh.set(self.allocator.allocated)
        self._m_vnh_free.set(len(self.allocator._free))
        self.fast_path._sync_gauges()
        if self.runtime is not None:
            self.runtime.refresh_gauges()

    # -- diagnostics and accounting ------------------------------------------------------

    def table_size(self) -> int:
        """Total installed flow rules (base + fast path)."""
        return len(self.switch.table)

    def traffic_by_segment(self) -> Dict[Tuple, Tuple[int, int]]:
        """(packets, bytes) matched per base-table provenance segment.

        Keys mirror the compiler's segment labels:
        ``(BASE_COOKIE, "policy", name)``, ``(BASE_COOKIE, "default")``,
        ``(BASE_COOKIE, "chains")``.  IXPs bill and debug by exactly this
        breakdown: which participant's policy handled how much traffic.
        """
        totals = self.switch.table.counters_by_cookie()
        return {
            cookie: counts
            for cookie, counts in totals.items()
            if isinstance(cookie, tuple) and cookie and cookie[0] == BASE_COOKIE
        }

    def policy_traffic(self, name: str) -> Tuple[int, int]:
        """(packets, bytes) handled by ``name``'s policy rules since install."""
        return self.traffic_by_segment().get((BASE_COOKIE, "policy", name), (0, 0))

    def default_traffic(self) -> Tuple[int, int]:
        """(packets, bytes) that followed plain BGP default forwarding."""
        return self.traffic_by_segment().get((BASE_COOKIE, "default"), (0, 0))

    def trace_packet(self, packet: Packet, in_port: str) -> "PacketTrace":
        """Explain how the fabric would forward one packet (no counters).

        The ``ovs-appctl ofproto/trace`` of this SDX: reports the
        matched rule, its provenance (which participant's policy,
        default forwarding, a chain continuation, or a fast-path
        override), and the resulting output packets.
        """
        located = packet.modify(port=in_port, switch=self.switch.name)
        resolved = self.switch.table.resolve(located)
        if resolved is None:
            return PacketTrace(packet, in_port, None, "no-match", frozenset())
        rule, raw_outputs = resolved
        cookie = rule.cookie
        if isinstance(cookie, tuple) and cookie and cookie[0] == BASE_COOKIE:
            verdict = ":".join(str(part) for part in cookie[1:]) or "base"
        elif isinstance(cookie, tuple) and cookie and cookie[0] == "fastpath":
            verdict = f"fastpath:{cookie[1]}"
        else:
            verdict = str(cookie)
        outputs = frozenset(out.modify(switch=None) for out in raw_outputs)
        return PacketTrace(packet, in_port, rule, verdict, outputs)

    def __repr__(self) -> str:
        return (
            f"SDXController(participants={len(self.config)}, "
            f"rules={len(self.switch.table)})"
        )
