"""Virtual next-hop (VNH) and virtual MAC (VMAC) allocation.

Section 4.2's tagging scheme needs two paired identifier spaces:

* VNH — an IP address, drawn from a pool reserved in the SDX config,
  placed in the next-hop field of the BGP routes the route server
  re-advertises;
* VMAC — a locally-administered MAC address that the SDX ARP responder
  returns for the VNH, and that therefore ends up in the destination
  MAC field of every packet a participant router sends toward the
  corresponding forwarding-equivalence class.

:class:`VirtualNextHopAllocator` hands out (VNH, VMAC) pairs and backs
the controller's ARP responder.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress, MACAllocator

__all__ = ["VirtualNextHop", "VirtualNextHopAllocator"]


class VirtualNextHop(NamedTuple):
    """One allocated (VNH IP, VMAC) pair."""

    address: IPv4Address
    hardware: MACAddress


class VirtualNextHopAllocator:
    """Sequential allocator over the configured VNH pool.

    The pool's network and broadcast addresses are skipped so VNHs are
    always valid host addresses on the peering LAN.
    """

    def __init__(
        self,
        pool: "IPv4Prefix | str" = "172.16.0.0/12",
        mac_allocator: Optional[MACAllocator] = None,
    ) -> None:
        self.pool = IPv4Prefix(pool)
        if self.pool.num_addresses < 4:
            raise ValueError(f"VNH pool too small: {self.pool}")
        self._macs = mac_allocator if mac_allocator is not None else MACAllocator()
        self._next_index = 1  # skip the network address
        self._by_address: Dict[IPv4Address, VirtualNextHop] = {}
        self._free: List[IPv4Address] = []  # released addresses, reused LIFO
        self.released_total = 0

    @property
    def allocated(self) -> int:
        return len(self._by_address)

    def mac_source(self) -> MACAllocator:
        """The VMAC allocator backing this pool.

        Encoders that spill classes to opaque per-FEC VMACs (the
        superset encoder's fallback) must draw from *this* allocator so
        spilled and fast-path per-prefix VMACs can never collide.
        """
        return self._macs

    def allocate(self, hardware: Optional[MACAddress] = None) -> VirtualNextHop:
        """Allocate a fresh (VNH, VMAC) pair.

        Released addresses are reused (most recently released first)
        before the sequential cursor advances, so a sustained flap on a
        few prefixes cycles a few addresses instead of draining the
        pool.  The VMAC is always fresh: routers must re-ARP and re-tag
        after every change, which a recycled MAC would defeat.  An
        attribute-encoding scheme (the superset encoder) may pass the
        ``hardware`` address explicitly; the pairing is still recorded
        here so the ARP responder stays the single authority.
        """
        if self._free:
            address = self._free.pop()
        elif self._next_index < self.pool.num_addresses - 1:
            address = self.pool.host(self._next_index)
            self._next_index += 1
        else:
            raise RuntimeError(f"VNH pool {self.pool} exhausted")
        if hardware is None:
            hardware = self._macs.allocate()
        vnh = VirtualNextHop(address, hardware)
        self._by_address[address] = vnh
        return vnh

    def resolve(self, address: "IPv4Address | str") -> Optional[MACAddress]:
        """ARP-responder hook: the VMAC for an allocated VNH address."""
        vnh = self._by_address.get(IPv4Address(address))
        return vnh.hardware if vnh is not None else None

    def release(self, address: "IPv4Address | str") -> bool:
        """Return one VNH address to the pool; False if not allocated.

        The fast path calls this for each superseded per-prefix VNH —
        without it, every flap between background recompilations leaks
        an address until the pool raises.
        """
        address = IPv4Address(address)
        if self._by_address.pop(address, None) is None:
            return False
        self._free.append(address)
        self.released_total += 1
        return True

    def reclaim(self, vnh: VirtualNextHop) -> None:
        """Undo a :meth:`release` (transactional rollback support).

        Reinstates the exact (address, VMAC) pair so restored fast-path
        rules and re-advertisements resolve again.  Idempotent.
        """
        if vnh.address not in self._by_address:
            self._by_address[vnh.address] = vnh
            try:
                self._free.remove(vnh.address)
            except ValueError:
                pass

    def release_all(self) -> None:
        """Forget every allocation (used by full background recompilation)."""
        self._by_address.clear()
        self._free.clear()
        self._next_index = 1
        self._macs.reset()

    def __contains__(self, address: "IPv4Address | str") -> bool:
        return IPv4Address(address) in self._by_address

    def __iter__(self) -> Iterator[VirtualNextHop]:
        return iter(self._by_address.values())

    def __repr__(self) -> str:
        return f"VirtualNextHopAllocator(pool={self.pool}, allocated={self.allocated})"
