"""Two-stage incremental compilation (Section 4.3.2).

When BGP best paths change, the SDX must react quickly but cannot
afford a full recompilation per update.  The paper's fast path:

* *assumes* a fresh VNH is needed for each changed prefix (skipping the
  FEC computation entirely);
* recompiles only the policy fragments that can touch that prefix;
* installs the result as higher-priority rules, leaving the (now
  partially stale) base table in place;

while the *background* stage periodically reruns the full compilation,
swapping in a minimal table and flushing the fast-path rules.  The
price of the fast path is extra rules in the switch — exactly what the
paper's Figure 9 counts — and its speed is what Figure 10 measures.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.telemetry import SIZE_BUCKETS

from repro.bgp.messages import Route
from repro.bgp.route_server import BestPathChange
from repro.core.chaining import (
    ServiceChain,
    chain_continuation_rules,
    chain_entry_block,
)
from repro.core.fec import PrefixGroup
from repro.core.transforms import (
    default_rules_for_group,
    delivery_rules_for_group,
    isolate,
)
from repro.core.vmac import VirtualNextHop
from repro.dataplane.flowtable import FlowRule
from repro.dataplane.reconcile import is_base_cookie
from repro.netutils.ip import IPv4Prefix
from repro.netutils.mac import MACMask
from repro.policy.analysis import with_fallback
from repro.policy.classifier import Classifier, Rule, sequence_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["FastPathEngine", "FastPathUpdate"]

#: Priority floor for fast-path rule blocks: far above any base table.
FASTPATH_BASE_PRIORITY = 10_000_000


class FastPathUpdate(NamedTuple):
    """Outcome of fast-path handling for one prefix."""

    prefix: IPv4Prefix
    vnh: Optional[VirtualNextHop]
    rules_installed: int
    seconds: float


class FastPathEngine:
    """Per-prefix quick recompilation with deferred re-optimization."""

    def __init__(self, controller: "SDXController") -> None:
        self._controller = controller
        self._active: Dict[IPv4Prefix, Any] = {}  # prefix -> cookie
        self._vnhs: Dict[IPv4Prefix, VirtualNextHop] = {}  # prefix -> its VNH
        self._sequence = 0
        self._extra_rules = 0  # running count of installed fast-path rules
        telemetry = getattr(controller, "telemetry", None)
        self._m_seconds = self._m_rules = self._m_updates = None
        self._m_extra = self._m_prefixes = None
        if telemetry is not None:
            self._m_seconds = telemetry.histogram(
                "sdx_fastpath_seconds",
                "Per-prefix fast-path handling latency (Figure 10)",
                sample_window=8192,
            )
            self._m_rules = telemetry.histogram(
                "sdx_fastpath_rules_installed",
                "Rules installed per fast-path update",
                buckets=SIZE_BUCKETS,
            )
            self._m_updates = telemetry.counter(
                "sdx_fastpath_updates_total",
                "Fast-path invocations by outcome",
                labels=("outcome",),
            )
            self._m_extra = telemetry.gauge(
                "sdx_fastpath_extra_rules",
                "Fast-path override rules currently installed (Figure 9)",
            )
            self._m_prefixes = telemetry.gauge(
                "sdx_fastpath_active_prefixes",
                "Prefixes currently served by fast-path rules",
            )

    def _now(self) -> float:
        telemetry = getattr(self._controller, "telemetry", None)
        return telemetry.now() if telemetry is not None else time.perf_counter()

    def _sync_gauges(self) -> None:
        if self._m_extra is not None:
            self._m_extra.set(self._extra_rules)
            self._m_prefixes.set(len(self._active))

    @property
    def active_prefixes(self) -> FrozenSet[IPv4Prefix]:
        """Prefixes currently served by fast-path rules."""
        return frozenset(self._active)

    def active_vnhs(self) -> Dict[IPv4Prefix, VirtualNextHop]:
        """The per-prefix VNHs currently backing fast-path blocks.

        The verification invariants audit these against the allocator:
        every entry must still be allocated (and resolvable over ARP),
        and nothing else fast-path-shaped may linger in the pool.
        """
        return dict(self._vnhs)

    def additional_rules(self) -> int:
        """Extra (fast-path) rules in the switch right now — Figure 9's metric."""
        table = self._controller.switch.table
        cookies = set(self._active.values())
        return sum(1 for rule in table if rule.cookie in cookies)

    # -- update handling ----------------------------------------------------

    def handle_changes(self, changes: List[BestPathChange]) -> List[FastPathUpdate]:
        """Fast-path one burst of best-path changes (deduplicated by prefix)."""
        results: List[FastPathUpdate] = []
        seen: Dict[IPv4Prefix, None] = {}
        for change in changes:
            seen.setdefault(change.prefix)
        # One shared-table sweep for the whole burst: per-prefix pruning
        # would rescan the table once per change.
        self.prune_stale_delivery(seen)
        for prefix in seen:
            results.append(self.handle_prefix(prefix, prune=False))
        return results

    def handle_prefix(
        self, prefix: IPv4Prefix, prune: bool = True
    ) -> FastPathUpdate:
        """Recompile a single prefix's slice of the SDX policy.

        Allocates a fresh VNH unconditionally (the paper's shortcut),
        builds the prefix-restricted two-stage policy, installs it above
        the base table, and pushes the re-advertisement so that border
        routers start tagging traffic with the new VMAC.
        """
        controller = self._controller
        started = self._now()
        if prune:
            self.prune_stale_delivery((prefix,))
        self._remove_block(prefix)
        ranked = controller.route_server.ranked_routes(prefix)
        if not ranked:
            # Prefix fully withdrawn: routers lose the route; nothing to install.
            controller.readvertise_prefix(prefix, None)
            elapsed = self._now() - started
            self._observe(elapsed, 0, installed=False)
            return FastPathUpdate(prefix, None, 0, elapsed)
        vnh = controller.allocator.allocate()
        group = PrefixGroup(-1, frozenset((prefix,)), vnh)
        classifier = self._compile_prefix(prefix, group, ranked)
        self._sequence += 1
        cookie = ("fastpath", str(prefix), self._sequence)
        controller.switch.table.install_classifier(
            classifier,
            base_priority=FASTPATH_BASE_PRIORITY + 4096 * self._sequence,
            cookie=cookie,
        )
        self._active[prefix] = cookie
        self._vnhs[prefix] = vnh
        self._extra_rules += len(classifier)
        controller.readvertise_prefix(prefix, vnh.address)
        elapsed = self._now() - started
        self._observe(elapsed, len(classifier), installed=True)
        return FastPathUpdate(prefix, vnh, len(classifier), elapsed)

    def prune_stale_delivery(self, prefixes: Any) -> int:
        """Drop shared delivery-table rules strandable by these changes.

        The multi-table layout's merged VMAC table carries one delivery
        rule per (class, announcing participant) — keyed by BGP
        *feasibility* at compile time, not by what stage-0 actually
        targets.  A withdrawal between background recompilations can
        therefore strand a delivery rule whose participant no longer
        advertises any prefix of the class.  The composed single table
        has no analogue: delivery only materializes behind stage-1
        rules, and those filter infeasible targets per sender.

        Frames must not leave the fabric toward a router that never
        advertised their destination (it would discard or, worse,
        re-route them), so the fast path prunes such rules — a table-1
        miss drops the frame, exactly what composition would have
        produced.  Masked superset rules covering several classes are
        narrowed instead of dropped: surviving classes keep exact-match
        replacements at the same priority.  The next background
        recompilation rebuilds the table from live state either way.
        """
        controller = self._controller
        last = controller.last_compilation
        if last is None or not last.placements:
            return 0  # single-table layout: delivery is composition-owned
        changed = set(prefixes)
        tag_classes = {
            group.vnh.hardware: group.prefixes
            for group in last.fec_table.affected_groups
        }
        changed_tags = {
            vmac
            for vmac, owned in tag_classes.items()
            if not changed.isdisjoint(owned)
        }
        if not changed_tags:
            return 0
        server = controller.route_server
        port_owner = {
            port.port_id: spec.name
            for spec in controller.config.participants()
            for port in spec.ports
        }
        table = controller.switch.table

        def advertises(target: str, vmac: Any) -> bool:
            return any(
                server.route_from(target, p) is not None
                for p in tag_classes[vmac]
            )

        removals: List[FlowRule] = []
        replacements: List[FlowRule] = []
        for rule in table:
            if rule.table == 0 or rule.goto is not None:
                continue
            if not is_base_cookie(rule.cookie):
                continue
            tag = rule.match.constraints.get("dstmac")
            if isinstance(tag, MACMask) and not tag.is_exact:
                matched = [vmac for vmac in tag_classes if tag.matches(vmac)]
                if changed_tags.isdisjoint(matched):
                    continue
            elif tag in changed_tags:
                matched = [tag]
            else:
                continue
            targets = {
                port_owner[action.output_port]
                for action in rule.actions
                if action.output_port in port_owner
            }
            if not targets:
                continue
            valid = [
                vmac
                for vmac in matched
                if all(advertises(target, vmac) for target in targets)
            ]
            if len(valid) == len(matched):
                continue
            removals.append(rule)
            for vmac in valid:
                narrowed = rule.match.restrict("dstmac", vmac)
                if narrowed is not None:
                    replacements.append(
                        FlowRule(
                            rule.priority,
                            narrowed,
                            rule.actions,
                            cookie=rule.cookie,
                            table=rule.table,
                            goto=rule.goto,
                        )
                    )
        for rule in removals:
            table.remove(rule)
        for rule in replacements:
            table.install(rule)
        if removals and self._m_updates is not None:
            self._m_updates.inc(len(removals), outcome="pruned")
        return len(removals)

    def _observe(self, seconds: float, rules: int, installed: bool) -> None:
        self._sync_gauges()
        if self._m_seconds is None:
            return
        self._m_seconds.observe(seconds)
        self._m_rules.observe(rules)
        self._m_updates.inc(outcome="installed" if installed else "withdrawn")

    def flush(self) -> int:
        """Drop every fast-path block (after a background recompilation).

        Also releases the per-prefix VNHs: the background compilation
        has re-assigned every affected prefix a fresh FEC-level VNH, so
        the fast-path ones are dead weight in the pool.
        """
        removed = 0
        table = self._controller.switch.table
        allocator = self._controller.allocator
        for cookie in self._active.values():
            removed += table.remove_by_cookie(cookie)
        for vnh in self._vnhs.values():
            allocator.release(vnh.address)
        self._active.clear()
        self._vnhs.clear()
        self._extra_rules = 0
        self._sync_gauges()
        return removed

    def snapshot(self) -> Tuple[Dict[IPv4Prefix, Any], Dict[IPv4Prefix, VirtualNextHop], int, int]:
        """Capture the engine's bookkeeping for transactional rollback.

        The cookie map, VNH map, sequence counter, and extra-rule count
        are recorded — the flow rules themselves are covered by the flow
        table's own checkpoint.
        """
        return dict(self._active), dict(self._vnhs), self._sequence, self._extra_rules

    def restore(
        self,
        state: Tuple[Dict[IPv4Prefix, Any], Dict[IPv4Prefix, VirtualNextHop], int, int],
    ) -> None:
        """Reinstate bookkeeping captured by :meth:`snapshot`.

        VNHs released by an intervening :meth:`flush` are reclaimed in
        the allocator so the restored rules and re-advertisements keep
        resolving.
        """
        active, vnhs, sequence, extra_rules = state
        self._active = dict(active)
        self._vnhs = dict(vnhs)
        for vnh in vnhs.values():
            self._controller.allocator.reclaim(vnh)
        self._sequence = sequence
        self._extra_rules = extra_rules
        self._sync_gauges()

    # -- prefix-restricted compilation ------------------------------------------

    def _compile_prefix(
        self, prefix: IPv4Prefix, group: PrefixGroup, ranked: Tuple[Route, ...]
    ) -> Classifier:
        """The mini SDX classifier handling exactly this prefix's VMAC."""
        controller = self._controller
        config = controller.config
        vmac = group.vnh.hardware

        # Stage 1: participant policy fragments mentioning this prefix,
        # then the per-group default rules.
        stage1_rules: List[Rule] = []
        for participant in config.participants():
            if participant.is_remote:
                continue
            raw = controller.raw_outbound_classifier(participant.name)
            if raw is None:
                continue
            loc_rib = controller.route_server.loc_rib(participant.name)
            feasible = loc_rib.feasible_next_hops(prefix)
            participant_names = frozenset(config.participant_names())
            fragment: List[Rule] = []
            for rule in raw.rules:
                if rule.is_drop:
                    continue
                constraint = rule.match.constraints.get("dstip")
                if constraint is not None and not constraint.overlaps(prefix):
                    continue
                # Participant targets require BGP feasibility; chain and
                # physical-port targets pass through, mirroring
                # vmacify_outbound's treatment.
                targets = [
                    action
                    for action in rule.actions
                    if (
                        action.output_port in feasible
                        if action.output_port in participant_names
                        else action.output_port is not None
                    )
                ]
                if not targets:
                    continue
                scoped = rule.match.without("dstip").restrict("dstmac", vmac)
                if scoped is None:
                    continue
                if constraint is not None and not constraint.contains(prefix):
                    narrowed = scoped.restrict("dstip", constraint)
                    if narrowed is None:
                        continue
                    scoped = narrowed
                fragment.append(Rule(scoped, targets))
            if fragment:
                stage1_rules.extend(
                    isolate(Classifier(fragment), participant.port_ids).rules
                )
        # Mid-chain continuation for this VMAC must outrank the default
        # rule (which has no port constraint and would otherwise swallow
        # traffic returning from a middlebox hop).
        chains = list(controller.policy.chains().values())
        for continuation in chain_continuation_rules(chains):
            scoped = continuation.match.restrict("dstmac", vmac)
            if scoped is not None:
                stage1_rules.append(Rule(scoped, continuation.actions))
        stage1_rules.extend(default_rules_for_group(config, group, ranked))
        stage1 = Classifier(stage1_rules)

        # Stage 2: blocks are only needed for locations stage 1 can reach
        # — the participants some rule forwards to, plus chains and
        # physical ports targeted directly.  Building all ~N blocks per
        # update would make the fast path linear in the exchange size
        # for no benefit.
        targets = set()
        for rule in stage1.rules:
            for action in rule.actions:
                if action.output_port is not None:
                    targets.add(action.output_port)
        blocks: Dict[Any, Classifier] = {}
        port_ids = {port.port_id for port in config.physical_ports()}
        for target in targets:
            if isinstance(target, ServiceChain):
                blocks[target] = chain_entry_block(target)
                continue
            if target in port_ids:
                blocks[target] = controller.passthrough_block(target)
                continue
            if target not in config:
                continue
            participant = config.participant(target)
            inbound = controller.raw_inbound_classifier(participant.name)
            narrowed_rules: List[Rule] = []
            if inbound is not None:
                for rule in inbound.rules:
                    scoped = rule.match.restrict("dstmac", vmac)
                    if scoped is not None:
                        narrowed_rules.append(Rule(scoped, rule.actions))
            combined = with_fallback(
                controller.rewrite_delivery(Classifier(narrowed_rules)),
                Classifier(delivery_rules_for_group(participant, group, ranked)),
            )
            block = isolate(combined, [participant.name])
            if len(block):
                blocks[participant.name] = block

        rules: List[Rule] = []
        for rule in stage1.rules:
            rules.extend(
                sequence_rule(rule, lambda action: blocks.get(action.output_port))
            )
        return Classifier(rules).optimized()

    # -- plumbing -------------------------------------------------------------

    def _remove_block(self, prefix: IPv4Prefix) -> int:
        """Drop one prefix's block and release its superseded VNH."""
        cookie = self._active.pop(prefix, None)
        removed = 0
        if cookie is not None:
            removed = self._controller.switch.table.remove_by_cookie(cookie)
            self._extra_rules -= removed
        vnh = self._vnhs.pop(prefix, None)
        if vnh is not None:
            self._controller.allocator.release(vnh.address)
        return removed

    def __repr__(self) -> str:
        return f"FastPathEngine(active_prefixes={len(self._active)})"
