"""Deterministic cooperative scheduling: timer wheel + task round-robin.

Two pieces, both layered on :class:`repro.sim.clock.Simulator` rather
than threads, so a replay with the same seed and event trace schedules
*identically*:

* :class:`TimerWheel` — the runtime's single timer surface.  It
  duck-types the ``Simulator`` scheduling API (``now`` /
  ``schedule`` / ``schedule_in`` / ``schedule_every``), which is
  exactly the surface :mod:`repro.resilience` already programs against,
  so session liveness, flap damping, and admission retries all share
  one wheel and one virtual clock.

* :class:`CooperativeScheduler` — resumes each registered task
  generator once per :meth:`step`, in registration order, forever.
  Tasks yield small tokens: ``("idle",)`` (nothing to do),
  ``("worked",)`` (made progress), or ``("wait", future)`` (blocked on
  an in-flight :class:`~repro.pipeline.backend.BackendFuture`).  The
  fixed resume order is what makes interleaving deterministic: there is
  no readiness race to win, only a rotation to take a turn in.  Non-idle
  slices are timed onto the ``sdx_runtime_task_seconds`` histogram.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.sim.clock import Simulator, TimerHandle

__all__ = ["CooperativeScheduler", "StepInfo", "TimerWheel"]


class TimerWheel:
    """The runtime's timer surface, backed by a shared sim clock."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Simulator) -> None:
        self._clock = clock

    @property
    def clock(self) -> Simulator:
        return self._clock

    @property
    def now(self) -> float:
        return self._clock.now

    def schedule(self, at: float, callback: Callable[[], None]) -> TimerHandle:
        return self._clock.schedule(at, callback)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self._clock.schedule_in(delay, callback)

    def schedule_every(self, interval: float, callback, **kwargs) -> TimerHandle:
        return self._clock.schedule_every(interval, callback, **kwargs)

    def next_event_time(self) -> Optional[float]:
        return self._clock.next_event_time()

    def run_until(self, end: float) -> None:
        self._clock.run_until(end)

    def __repr__(self) -> str:
        return f"TimerWheel(now={self._clock.now})"


class StepInfo(NamedTuple):
    """What one scheduler rotation accomplished."""

    #: at least one task yielded ("worked",)
    progressed: bool
    #: futures tasks are blocked on (empty unless some task yielded wait)
    futures: Tuple


class _Task:
    __slots__ = ("name", "gen", "retired")

    def __init__(self, name: str, gen) -> None:
        self.name = name
        self.gen = gen
        self.retired = False


class CooperativeScheduler:
    """Fixed-order round-robin over long-lived task generators."""

    def __init__(self, histogram=None, now: Optional[Callable[[], float]] = None):
        self._tasks: List[_Task] = []
        self._m_task = histogram
        self._now = now if now is not None else (lambda: 0.0)

    def add(self, name: str, gen) -> None:
        """Register a task; resume order is registration order, always."""
        self._tasks.append(_Task(name, gen))

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(task.name for task in self._tasks)

    def step(self) -> StepInfo:
        """Resume every live task once; report progress and blockers."""
        progressed = False
        futures: List = []
        for task in self._tasks:
            if task.retired:
                continue
            started = self._now()
            try:
                token = next(task.gen)
            except StopIteration:
                task.retired = True
                continue
            kind = token[0]
            if kind == "idle":
                continue
            if self._m_task is not None:
                self._m_task.observe(self._now() - started, task=task.name)
            if kind == "wait":
                futures.append(token[1])
            else:
                progressed = True
        return StepInfo(progressed=progressed, futures=tuple(futures))

    def __repr__(self) -> str:
        return f"CooperativeScheduler(tasks={list(self.task_names)})"
