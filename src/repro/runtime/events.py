"""Typed control-plane events and their in-flight submission records.

Every mutating facet entry point has an event class here whose
``apply(controller)`` runs the *same* module-level ``_apply_*`` body the
inline mode calls directly (see :mod:`repro.core.facets`) — the two
runtime modes differ only in *when* that body runs, never in what it
does, which is the heart of the byte-identical determinism argument.

A :class:`Submission` is the caller-visible handle: enqueue time (for
the ``sdx_update_install_seconds`` latency histogram), completion flag,
result or error, and the admission-retry count.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ChainDefineEvent",
    "ChainRemoveEvent",
    "CompileEvent",
    "OriginateEvent",
    "PolicyEvent",
    "ReleaseQuarantineEvent",
    "Submission",
    "UpdateEvent",
    "WithdrawOriginationEvent",
]


def _facets():
    # Imported lazily: repro.core.controller imports repro.runtime at
    # module level, so a module-level facets import here would close an
    # import cycle through the repro.core package __init__.
    from repro.core import facets

    return facets


class Submission:
    """One enqueued control-plane event and its eventual outcome."""

    __slots__ = (
        "event",
        "enqueued_at",
        "done",
        "result",
        "error",
        "completed_at",
        "retries",
    )

    def __init__(self, event, enqueued_at: float) -> None:
        self.event = event
        self.enqueued_at = enqueued_at
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.completed_at: Optional[float] = None
        self.retries = 0

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        if self.error is not None:
            state = f"failed:{type(self.error).__name__}"
        return f"Submission({self.event!r}, {state})"


class _Event:
    """Base: kind label + repr; subclasses provide ``apply``."""

    kind = "event"
    #: the submission's result should be the compile job's CommitReport
    returns_report = False

    def apply(self, controller):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UpdateEvent(_Event):
    """A BGP UPDATE from a participant (``routing.process_update``)."""

    kind = "update"

    def __init__(self, update) -> None:
        self.update = update

    def apply(self, controller):
        return _facets()._apply_process_update(controller, self.update)

    def __repr__(self) -> str:
        return f"UpdateEvent({self.update!r})"


class PolicyEvent(_Event):
    """A policy-set install/replace/clear (``policy.set_policies``)."""

    kind = "policy"

    def __init__(self, name, policy_set, recompile: bool = True) -> None:
        self.name = name
        self.policy_set = policy_set
        self.recompile = recompile

    def apply(self, controller):
        return _facets()._apply_set_policies(
            controller, self.name, self.policy_set, recompile=self.recompile
        )

    def __repr__(self) -> str:
        return f"PolicyEvent({self.name!r}, recompile={self.recompile})"


class OriginateEvent(_Event):
    """SDX route origination (``routing.originate``)."""

    kind = "originate"

    def __init__(self, name, prefix) -> None:
        self.name = name
        self.prefix = prefix

    def apply(self, controller):
        return _facets()._apply_originate(controller, self.name, self.prefix)


class WithdrawOriginationEvent(_Event):
    """Withdraw a previously originated prefix."""

    kind = "originate"

    def __init__(self, name, prefix) -> None:
        self.name = name
        self.prefix = prefix

    def apply(self, controller):
        return _facets()._apply_withdraw_origination(
            controller, self.name, self.prefix
        )


class ChainDefineEvent(_Event):
    """Service-chain registration (``policy.define_chain``)."""

    kind = "chain"

    def __init__(self, chain, recompile: bool = False) -> None:
        self.chain = chain
        self.recompile = recompile

    def apply(self, controller):
        return _facets()._apply_define_chain(
            controller, self.chain, recompile=self.recompile
        )


class ChainRemoveEvent(_Event):
    """Service-chain removal (``policy.remove_chain``)."""

    kind = "chain"

    def __init__(self, name, recompile: bool = False) -> None:
        self.name = name
        self.recompile = recompile

    def apply(self, controller):
        return _facets()._apply_remove_chain(
            controller, self.name, recompile=self.recompile
        )


class ReleaseQuarantineEvent(_Event):
    """Operator re-admission of a quarantined participant."""

    kind = "ops"

    def __init__(self, name, recompile: bool = True) -> None:
        self.name = name
        self.recompile = recompile

    def apply(self, controller):
        return _facets()._apply_release_quarantine(
            controller, self.name, recompile=self.recompile
        )


class CompileEvent(_Event):
    """An explicit full compilation (``controller.compile()``).

    ``apply`` only *requests* the compile job — the runtime's compile
    and commit tasks do the work — and the submission's result is the
    job's :class:`~repro.dataplane.reconcile.CommitReport`, matching the
    inline return value.
    """

    kind = "compile"
    returns_report = True

    def apply(self, controller):
        controller.runtime.request_compile()
        return None
