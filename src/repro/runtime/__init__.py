"""repro.runtime — deterministic event-loop control-plane runtime.

Two runtime modes drive the same control-plane bodies:

* ``inline`` (default) — every facet call runs its ``_apply_*`` body
  synchronously, compile included, exactly as before this package
  existed.
* ``eventloop`` — facet calls enqueue typed events onto a bounded
  ingress queue and a cooperative scheduler pipelines the
  update→compile→commit→verify path (see
  :class:`~repro.runtime.runtime.ControlPlaneRuntime`).  Single calls
  auto-drain and return the same results; ``runtime.pipelined()``
  unlocks burst mode.

Select with ``SDXController(runtime_mode=...)`` or the
``REPRO_RUNTIME`` environment variable.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from repro.runtime.events import Submission
from repro.runtime.queues import BoundedQueue, QueueOverflow
from repro.runtime.runtime import CompileJob, ControlPlaneRuntime, RuntimeConfig
from repro.runtime.scheduler import CooperativeScheduler, StepInfo, TimerWheel

__all__ = [
    "RUNTIME_MODES",
    "BoundedQueue",
    "CompileJob",
    "ControlPlaneRuntime",
    "CooperativeScheduler",
    "QueueOverflow",
    "RuntimeConfig",
    "StepInfo",
    "Submission",
    "TimerWheel",
    "runtime_mode_from_env",
]

#: the two sanctioned control-plane runtime modes
RUNTIME_MODES = ("inline", "eventloop")


def runtime_mode_from_env(env: Optional[Mapping[str, str]] = None) -> str:
    """Resolve the runtime mode from ``REPRO_RUNTIME`` (default inline)."""
    source = os.environ if env is None else env
    mode = source.get("REPRO_RUNTIME", "inline").strip().lower() or "inline"
    if mode not in RUNTIME_MODES:
        raise ValueError(
            f"REPRO_RUNTIME must be one of {RUNTIME_MODES}, got {mode!r}"
        )
    return mode
