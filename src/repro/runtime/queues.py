"""Bounded queues for the control-plane runtime.

The event-loop runtime's tasks communicate only through these queues;
the ingress queue is *bounded* so a misbehaving peer storms into
backpressure (a :class:`QueueOverflow` at submission time) instead of
unbounded memory growth.  Depth changes are reported through an
``on_depth`` callback so the runtime can keep the
``sdx_runtime_queue_depth`` gauge current without the queue knowing
about telemetry.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

__all__ = ["BoundedQueue", "QueueOverflow"]


class QueueOverflow(RuntimeError):
    """A bounded queue refused an item (backpressure, not data loss)."""

    def __init__(self, name: str, capacity: int) -> None:
        super().__init__(f"queue {name!r} full ({capacity} items)")
        self.queue = name
        self.capacity = capacity


class BoundedQueue:
    """FIFO with a hard capacity and depth accounting."""

    __slots__ = (
        "name",
        "capacity",
        "peak_depth",
        "total_enqueued",
        "total_rejected",
        "_items",
        "_on_depth",
    )

    def __init__(
        self,
        name: str,
        capacity: int,
        on_depth: Optional[Callable[[int], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.peak_depth = 0
        self.total_enqueued = 0
        self.total_rejected = 0
        self._items: Deque = deque()
        self._on_depth = on_depth

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item) -> None:
        """Enqueue, or raise :class:`QueueOverflow` when at capacity."""
        if len(self._items) >= self.capacity:
            self.total_rejected += 1
            raise QueueOverflow(self.name, self.capacity)
        self._items.append(item)
        self.total_enqueued += 1
        depth = len(self._items)
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self._on_depth is not None:
            self._on_depth(depth)

    def pop(self):
        """Dequeue the oldest item (raises IndexError when empty)."""
        item = self._items.popleft()
        if self._on_depth is not None:
            self._on_depth(len(self._items))
        return item

    def peek(self):
        """The oldest item without removing it (None when empty)."""
        return self._items[0] if self._items else None

    def __repr__(self) -> str:
        return (
            f"BoundedQueue({self.name!r}, depth={len(self._items)}/"
            f"{self.capacity}, peak={self.peak_depth})"
        )
