"""The deterministic event-loop control-plane runtime.

:class:`ControlPlaneRuntime` turns the controller's synchronous call
chain (update → route server → fast path → compile → guard → commit)
into four cooperative tasks communicating through queues:

* **ingress** — drains the bounded submission queue, applies each event
  (the same ``_apply_*`` bodies inline mode calls), optionally
  coalescing contiguous BGP bursts through ``UpdateIngress.batch``, and
  waits for any compile job an event requested;
* **compile** — drives ``CompilationPipeline.compile_steps()``, yielding
  at stage boundaries and while a shard batch is in flight on the
  :class:`~repro.pipeline.backend.ExecutionBackend` (non-blocking
  futures instead of the old barrier);
* **verify** — runs the *deferred* guard check of the previous commit
  (:meth:`~repro.guard.commits.CommitGuard.verify_snapshot`), which is
  how guard verification of commit N overlaps compilation of N+1;
* **commit** — installs a compiled result with ``defer_guard=True`` and
  hands the resulting pending verification to the verify task.  It
  holds off while a verification is still pending: probes must read the
  table they are checking.

Determinism: tasks resume in a fixed rotation on one thread, events
apply in submission order at exactly the same points the inline mode
applies them, and the guard's success path is side-effect-free — so
``REPRO_RUNTIME=inline`` and ``eventloop`` produce *byte-identical*
flow-table digests for the same seed and event trace (pinned by
``tests/property/test_runtime_equivalence.py``).  The two sanctioned
divergences are opt-in or failure-only: burst coalescing
(``RuntimeConfig.coalesce``) changes fast-path sequence numbers and is
only forwarding-equivalent, and a deferred guard *violation* under
``pipelined()`` rolls back a commit that later events already built on.

By default every facet submission auto-drains — enqueue, run the loop
to quiescence, return the real result — so the synchronous API is
preserved exactly.  :meth:`ControlPlaneRuntime.pipelined` opens burst
mode: submissions return :class:`~repro.runtime.events.Submission`
handles immediately and the loop pipelines ingress, compilation,
commit, and verification until the block drains.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Deque, Dict, List, NamedTuple, Optional

from repro.runtime.events import (
    ChainDefineEvent,
    ChainRemoveEvent,
    CompileEvent,
    OriginateEvent,
    PolicyEvent,
    ReleaseQuarantineEvent,
    Submission,
    UpdateEvent,
    WithdrawOriginationEvent,
)
from repro.runtime.queues import BoundedQueue, QueueOverflow
from repro.runtime.scheduler import CooperativeScheduler, TimerWheel
from repro.sim.clock import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SDXController

__all__ = ["CompileJob", "ControlPlaneRuntime", "RuntimeConfig"]


class RuntimeConfig(NamedTuple):
    """Event-loop runtime knobs (``SDXController(runtime_config=...)``)."""

    #: bounded ingress queue capacity; overflow raises QueueOverflow at
    #: submission time (backpressure)
    ingress_capacity: int = 1024
    #: coalesce contiguous queued BGP updates through UpdateIngress.batch
    #: — one deduplicated fast-path pass per burst.  Opt-in: coalescing
    #: changes fast-path sequence numbers (cookies), so the result is
    #: forwarding-equivalent but not byte-identical to inline.
    coalesce: bool = False
    #: verify guarded commits *after* transaction.commit, overlapped
    #: with the next compilation (the pipelined update→install path)
    defer_guard: bool = True
    #: on an AdmissionError with retry_after, park the submission on the
    #: timer wheel and re-enqueue it instead of failing it
    admission_retry: bool = False
    #: retry budget per submission before the rejection is final
    max_admission_retries: int = 8
    #: drive the telemetry clock from the runtime's virtual clock so
    #: latencies, admission windows, and timers share one time base
    sim_time: bool = False


class CompileJob:
    """One requested compilation: from dirty state to committed report."""

    __slots__ = ("submissions", "report", "error", "done")

    def __init__(self) -> None:
        self.submissions: List[Submission] = []
        self.report = None
        self.error: Optional[BaseException] = None
        self.done = False

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        if self.error is not None:
            state = f"failed:{type(self.error).__name__}"
        return f"CompileJob({state})"


class ControlPlaneRuntime:
    """Cooperative task runtime for one controller (``controller.runtime``)."""

    def __init__(
        self,
        controller: "SDXController",
        config: Optional[RuntimeConfig] = None,
        clock: Optional[Simulator] = None,
    ) -> None:
        self.controller = controller
        self.config = config if config is not None else RuntimeConfig()
        self.clock = clock if clock is not None else Simulator()
        self.timers = TimerWheel(self.clock)
        telemetry = controller.telemetry
        if self.config.sim_time:
            clock_ref = self.clock
            telemetry.set_time_source(lambda: clock_ref.now)
        self._m_depth = telemetry.gauge(
            "sdx_runtime_queue_depth",
            "Items queued between control-plane runtime tasks",
            labels=("queue",),
        )
        self._m_task = telemetry.histogram(
            "sdx_runtime_task_seconds",
            "Time per runtime task resume slice",
            labels=("task",),
            sample_window=2048,
        )
        self._ingress = BoundedQueue(
            "ingress",
            self.config.ingress_capacity,
            on_depth=lambda depth: self._m_depth.set(depth, queue="ingress"),
        )
        self._compile_q: Deque[CompileJob] = deque()
        self._commit_q: Deque = deque()
        self._verify_q: Deque = deque()
        self._inflight = 0
        self._active = False
        self._applying = False
        self._pipeline_depth = 0
        self._pending_errors: List[BaseException] = []
        self._requested_job: Optional[CompileJob] = None
        self._compiling = False
        self._abort_requested = False
        self.scheduler = CooperativeScheduler(self._m_task, telemetry.now)
        # Fixed rotation: verify sits between compile and commit so a
        # pending verification lands in the same rotation the compile
        # task yields in (overlap), and always before the next commit.
        self.scheduler.add("ingress", self._ingress_task())
        self.scheduler.add("compile", self._compile_task())
        self.scheduler.add("verify", self._verify_task())
        self.scheduler.add("commit", self._commit_task())

    # -- state the controller consults ---------------------------------------

    @property
    def active(self) -> bool:
        """True while the loop is draining (we are *inside* the machinery)."""
        return self._active

    @property
    def applying(self) -> bool:
        """True while an event's apply body is executing on the ingress task."""
        return self._applying

    def queue_depths(self) -> Dict[str, int]:
        return {
            "ingress": len(self._ingress),
            "compile": len(self._compile_q),
            "commit": len(self._commit_q),
            "verify": len(self._verify_q),
        }

    def health_info(self) -> Dict[str, Any]:
        """The ``runtime`` section of ``ops.health()``."""
        return {
            "mode": "eventloop",
            "queues": self.queue_depths(),
            "ingress_peak": self._ingress.peak_depth,
            "ingress_rejected": self._ingress.total_rejected,
            "inflight": self._inflight,
        }

    def refresh_gauges(self) -> None:
        for name, depth in self.queue_depths().items():
            self._m_depth.set(depth, queue=name)

    # -- submission entry points (called by the facets) ----------------------

    def submit_update(self, update):
        return self._submit(UpdateEvent(update))

    def submit_policies(self, name, policy_set, recompile=True):
        return self._submit(PolicyEvent(name, policy_set, recompile=recompile))

    def submit_originate(self, name, prefix):
        return self._submit(OriginateEvent(name, prefix))

    def submit_withdraw_origination(self, name, prefix):
        return self._submit(WithdrawOriginationEvent(name, prefix))

    def submit_define_chain(self, chain, recompile=False):
        return self._submit(ChainDefineEvent(chain, recompile=recompile))

    def submit_remove_chain(self, name, recompile=False):
        return self._submit(ChainRemoveEvent(name, recompile=recompile))

    def submit_release_quarantine(self, name, recompile=True):
        return self._submit(ReleaseQuarantineEvent(name, recompile=recompile))

    def submit_compile(self):
        return self._submit(CompileEvent())

    def _submit(self, event):
        """Enqueue an event; auto-drain unless inside ``pipelined()``.

        Re-entrant calls — a facet invoked *from inside* the loop (an
        apply body, a commit hook, the guard's release race) — execute
        the apply body directly, exactly as inline mode would nest them.
        """
        controller = self.controller
        if self._active:
            return event.apply(controller)
        submission = Submission(event, controller.telemetry.now())
        self._ingress.push(submission)  # may raise QueueOverflow
        self._inflight += 1
        if self._pipeline_depth > 0:
            return submission
        self.drain()
        if submission.error is not None:
            raise submission.error
        return submission.result

    def request_compile(self) -> CompileJob:
        """Queue a compilation job (called via ``_maybe_compile`` during
        an apply body); the requesting submission is attached by the
        ingress task and completes when the job commits."""
        job = CompileJob()
        self._compile_q.append(job)
        self._m_depth.set(len(self._compile_q), queue="compile")
        self._requested_job = job
        return job

    # -- burst mode and the drain loop ----------------------------------------

    @contextmanager
    def pipelined(self):
        """Burst mode: submissions return handles; one drain at exit.

        Inside the block the loop pipelines freely: ingress applies
        event N+1 as soon as commit N lands, while the guard verifies
        commit N under compilation N+1.  On a clean exit the block
        drains to quiescence; on an exception pending submissions stay
        queued (``discard_pending()`` clears them).
        """
        self._pipeline_depth += 1
        clean = False
        try:
            yield self
            clean = True
        finally:
            self._pipeline_depth -= 1
            if clean and self._pipeline_depth == 0:
                self.drain()

    def drain(self) -> None:
        """Run the loop until every queue is empty and nothing is in flight.

        One rotation resumes every task once.  A rotation with no
        progress but blocked futures blocks on the first future (the
        verify task already had its overlap turn this rotation); with
        no progress and no futures, the virtual clock advances to the
        next timer (admission retries, resilience timers).  Raises the
        first recorded task error after quiescence.
        """
        if self._active:
            return
        self._active = True
        try:
            while not self._quiescent():
                info = self.scheduler.step()
                if info.progressed or self._quiescent():
                    continue
                if info.futures:
                    info.futures[0].wait()
                    continue
                next_at = self.clock.next_event_time()
                if next_at is not None:
                    self.clock.run_until(next_at)
                    continue
                raise RuntimeError(
                    "control-plane runtime stalled: work pending but no "
                    f"runnable task and no timer ({self.queue_depths()}, "
                    f"inflight={self._inflight})"
                )
        finally:
            self._active = False
        if self._pending_errors:
            errors, self._pending_errors = self._pending_errors, []
            raise errors[0]

    def run_until(self, end: float) -> None:
        """Advance the virtual clock to ``end``, draining as timers fire."""
        while True:
            next_at = self.clock.next_event_time()
            if next_at is None or next_at > end:
                break
            self.clock.run_until(next_at)
            self.drain()
        self.clock.run_until(end)
        self.drain()

    def discard_pending(self) -> int:
        """Fail and drop everything still queued (after an aborted burst)."""
        dropped = 0
        error = RuntimeError("submission discarded before it was applied")
        while not self._ingress.empty:
            self._complete(self._ingress.pop(), error=error)
            dropped += 1
        self._compile_q.clear()
        self._commit_q.clear()
        self._verify_q.clear()
        self.refresh_gauges()
        return dropped

    def _quiescent(self) -> bool:
        return (
            self._inflight == 0
            and self._ingress.empty
            and not self._compile_q
            and not self._commit_q
            and not self._verify_q
        )

    def _complete(self, submission: Submission, result=None, error=None) -> None:
        submission.result = result
        submission.error = error
        submission.done = True
        now = self.controller.telemetry.now()
        submission.completed_at = now
        self._inflight -= 1
        self.controller._m_install_latency.observe(
            now - submission.enqueued_at, kind=submission.event.kind
        )

    def _maybe_retry(self, submission: Submission, error: BaseException) -> bool:
        """Park an admission-rejected submission until its retry_after."""
        retry_after = getattr(error, "retry_after", None)
        if not self.config.admission_retry or retry_after is None:
            return False
        if submission.retries >= self.config.max_admission_retries:
            return False
        submission.retries += 1

        def requeue() -> None:
            try:
                self._ingress.push(submission)
            except QueueOverflow as overflow:
                self._complete(submission, error=overflow)

        self.timers.schedule_in(max(float(retry_after), 0.0), requeue)
        return True

    # -- the tasks ------------------------------------------------------------

    def _apply_event(self, submission: Submission):
        """Run one event's apply body; returns (result, error, job)."""
        controller = self.controller
        result = None
        error: Optional[BaseException] = None
        self._requested_job = None
        self._applying = True
        try:
            result = submission.event.apply(controller)
        except Exception as exc:  # noqa: BLE001 - stored on the submission
            error = exc
        finally:
            self._applying = False
        job, self._requested_job = self._requested_job, None
        return result, error, job

    def _finish_simple(self, submission: Submission, result, error) -> None:
        if error is not None:
            if not self._maybe_retry(submission, error):
                self._complete(submission, error=error)
        else:
            self._complete(submission, result=result)

    def _ingress_task(self):
        controller = self.controller
        while True:
            if self._ingress.empty:
                yield ("idle",)
                continue
            submission = self._ingress.pop()
            if self.config.coalesce and isinstance(submission.event, UpdateEvent):
                # Coalesce the contiguous run of queued updates into one
                # UpdateIngress batch: RIB ordering is preserved (each
                # update still applies in sequence), but the fast path
                # sees one deduplicated change set for the whole burst.
                burst = [submission]
                while not self._ingress.empty and isinstance(
                    self._ingress.peek().event, UpdateEvent
                ):
                    burst.append(self._ingress.pop())
                if len(burst) > 1:
                    with controller.pipeline.ingress.batch():
                        for queued in burst:
                            result, error, _ = self._apply_event(queued)
                            self._finish_simple(queued, result, error)
                    yield ("worked",)
                    continue
            result, error, job = self._apply_event(submission)
            if error is not None:
                self._finish_simple(submission, None, error)
                yield ("worked",)
                continue
            if job is None:
                self._complete(submission, result=result)
                yield ("worked",)
                continue
            # The event requested a compilation: this submission rides
            # the job, and the next event waits for the commit — compile
            # points in event order are exactly the inline mode's.
            job.submissions.append(submission)
            yield ("worked",)
            while not job.done:
                yield ("idle",)
            if job.error is not None:
                self._complete(submission, error=job.error)
            elif submission.event.returns_report:
                self._complete(submission, result=job.report)
            else:
                self._complete(submission, result=result)
            # No yield here: keep draining in this same resume so events
            # queued behind the commit install *before* the verify task's
            # slot — the deferred probe pass must never sit on their
            # install path.  (Verification tolerates this: the deferred
            # rollback flushes post-commit fast-path overrides first.)

    def _compile_task(self):
        controller = self.controller
        while True:
            if not self._compile_q:
                yield ("idle",)
                continue
            job = self._compile_q[0]
            self._compiling = True
            self._abort_requested = False
            steps = controller.pipeline.compile_steps()
            result = None
            error: Optional[BaseException] = None
            aborted = False
            while True:
                if self._abort_requested:
                    # A deferred guard violation rolled the world back
                    # under this compilation; its inputs are fiction.
                    steps.close()
                    aborted = True
                    break
                try:
                    token = next(steps)
                except StopIteration as stop:
                    result = stop.value
                    break
                except Exception as exc:  # noqa: BLE001 - fails the job
                    error = exc
                    break
                if token[0] == "wait":
                    future = token[1]
                    yield ("wait", future)
                    if self._abort_requested:
                        # Wind the in-flight batch down before closing:
                        # a forked pool must be joined, not leaked.
                        try:
                            future.wait()
                        except Exception:  # noqa: BLE001 - discarded
                            pass
                else:
                    yield ("worked",)
            self._compiling = False
            self._abort_requested = False
            self._compile_q.popleft()
            self._m_depth.set(len(self._compile_q), queue="compile")
            if aborted:
                job.error = RuntimeError(
                    "compilation aborted: a deferred guard violation rolled "
                    "back the commit it was building on"
                )
                job.done = True
            elif error is not None:
                job.error = error
                job.done = True
            else:
                self._commit_q.append((job, result))
                self._m_depth.set(len(self._commit_q), queue="commit")
            yield ("worked",)

    def _verify_task(self):
        while True:
            if not self._verify_q:
                yield ("idle",)
                continue
            job, pending = self._verify_q.popleft()
            self._m_depth.set(len(self._verify_q), queue="verify")
            guard = self.controller.guard
            try:
                guard.verify_snapshot(pending)
            except Exception as exc:  # noqa: BLE001 - surfaced from drain
                if self._compiling:
                    self._abort_requested = True
                for submission in job.submissions:
                    if submission.error is None:
                        submission.error = exc
                self._pending_errors.append(exc)
            yield ("worked",)

    def _commit_task(self):
        controller = self.controller
        while True:
            if not self._commit_q:
                yield ("idle",)
                continue
            if self._verify_q:
                # The previous commit's deferred check must land first:
                # its probes read the table that is installed right now.
                yield ("idle",)
                continue
            job, result = self._commit_q.popleft()
            self._m_depth.set(len(self._commit_q), queue="commit")
            committer = controller.pipeline.committer
            try:
                job.report = committer.install(
                    result, defer_guard=self.config.defer_guard
                )
            except Exception as exc:  # noqa: BLE001 - stored on the job
                job.error = exc
            job.done = True
            pending = committer.pop_deferred_verification()
            if pending is not None:
                self._verify_q.append((job, pending))
                self._m_depth.set(len(self._verify_q), queue="verify")
            yield ("worked",)

    def __repr__(self) -> str:
        return (
            f"ControlPlaneRuntime(inflight={self._inflight}, "
            f"queues={self.queue_depths()})"
        )
