"""repro — a full reproduction of "SDX: A Software Defined Internet Exchange"
(Gupta et al., SIGCOMM 2014) as a self-contained Python library.

The package is layered exactly like the paper's system:

* :mod:`repro.policy` — the Pyretic-style policy language participants
  write (predicates, actions, ``>>``/``+`` composition, classifier
  compilation);
* :mod:`repro.bgp` — the route-server substrate (attributes, RIBs,
  decision process, update-stream analysis);
* :mod:`repro.dataplane` — flow tables, SDN/learning switches, border
  routers, ARP, and an emulated exchange fabric;
* :mod:`repro.core` — the SDX itself: virtual-switch abstraction,
  the four-stage policy compiler with VNH/VMAC state reduction, and
  the two-stage incremental update path;
* :mod:`repro.workloads` — synthetic IXP topologies, policy mixes, and
  BGP update traces with the paper's measured characteristics;
* :mod:`repro.experiments` — one runner per table/figure of the
  paper's evaluation (see EXPERIMENTS.md).

Thirty-second tour::

    from repro import IXPConfig, SDXController, match, fwd

    config = IXPConfig()
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])

    controller = SDXController(config)
    a = controller.register_participant("A")
    a.set_policies(outbound=match(dstport=80) >> fwd("B"))
"""

from repro.bgp import (
    ASPath,
    Announcement,
    BGPUpdate,
    Route,
    RouteAttributes,
    RouteServer,
    Withdrawal,
)
from repro.core import (
    CompilationOptions,
    SDXConfig,
    SDXController,
    SDXPolicySet,
)
from repro.ixp import IXPConfig
from repro.netutils import IPv4Address, IPv4Prefix, MACAddress, ip, mac, prefix
from repro.policy import (
    Packet,
    drop,
    fwd,
    identity,
    if_,
    match,
    modify,
)

__version__ = "1.0.0"

__all__ = [
    "ASPath",
    "Announcement",
    "BGPUpdate",
    "CompilationOptions",
    "IPv4Address",
    "IPv4Prefix",
    "IXPConfig",
    "MACAddress",
    "Packet",
    "Route",
    "RouteAttributes",
    "RouteServer",
    "SDXController",
    "SDXPolicySet",
    "Withdrawal",
    "__version__",
    "drop",
    "fwd",
    "identity",
    "if_",
    "ip",
    "mac",
    "match",
    "modify",
    "prefix",
]
