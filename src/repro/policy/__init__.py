"""Pyretic-style policy language and classifier compilation.

This package is a from-scratch implementation of the policy substrate
the SDX paper builds on (Monsanto et al., NSDI 2013): predicates,
actions, sequential (``>>``) and parallel (``+``) composition, and a
compiler from policy ASTs to prioritized rule tables.

Quick tour::

    from repro.policy import match, fwd, modify, if_, drop, identity

    app_peering = (
        (match(dstport=80) >> fwd("B")) +
        (match(dstport=443) >> fwd("C"))
    )
    rules = app_peering.compile()        # a Classifier
    outputs = app_peering.eval(packet)   # a frozenset of located packets
"""

from repro.policy.analysis import (
    claimed_matches,
    classifiers_disjoint,
    forwarding_ports,
    with_fallback,
)
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.language import (
    Drop,
    FalsePredicate,
    Filter,
    Forward,
    Identity,
    If,
    Intersection,
    Match,
    Modify,
    Negation,
    Parallel,
    Policy,
    Sequential,
    TruePredicate,
    Union,
    drop,
    false_,
    fwd,
    identity,
    if_,
    match,
    modify,
    parallel,
    sequential,
    true_,
    union_match,
)
from repro.policy.packet import Packet

__all__ = [
    "Action",
    "Classifier",
    "Drop",
    "FalsePredicate",
    "Filter",
    "Forward",
    "HeaderMatch",
    "Identity",
    "If",
    "Intersection",
    "Match",
    "Modify",
    "Negation",
    "Packet",
    "Parallel",
    "Policy",
    "Rule",
    "Sequential",
    "TruePredicate",
    "Union",
    "claimed_matches",
    "classifiers_disjoint",
    "drop",
    "false_",
    "forwarding_ports",
    "fwd",
    "identity",
    "if_",
    "match",
    "modify",
    "parallel",
    "sequential",
    "true_",
    "union_match",
    "with_fallback",
]
