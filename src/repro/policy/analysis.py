"""Flow-space analysis over compiled classifiers.

The SDX runtime needs three analyses beyond plain composition:

* :func:`claimed_matches` — the flow space a participant's policy
  *claims* (the union of its match predicates, Section 4.1), used to
  decide which packets fall back to default BGP forwarding;
* :func:`with_fallback` — the classifier-level equivalent of
  ``if_(claimed, policy, default)`` that avoids recompiling the policy
  inside both branches of the desugared conditional;
* :func:`classifiers_disjoint` — the check backing the Section 4.3.1
  optimization that skips parallel composition of policies that can
  never apply to the same packet.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, List, Set

from repro.policy.classifier import Classifier, HeaderMatch, Rule

__all__ = [
    "claimed_matches",
    "classifiers_disjoint",
    "forwarding_ports",
    "with_fallback",
]


def claimed_matches(classifier: Classifier) -> List[HeaderMatch]:
    """Matches of every non-drop rule: the flow space the policy handles."""
    return [rule.match for rule in classifier.rules if not rule.is_drop]


def forwarding_ports(classifier: Classifier) -> FrozenSet[Any]:
    """Every output port some rule of the classifier can send to."""
    ports: Set[Any] = set()
    for rule in classifier.rules:
        for action in rule.actions:
            port = action.output_port
            if port is not None:
                ports.add(port)
    return frozenset(ports)


def classifiers_disjoint(left: Classifier, right: Classifier) -> bool:
    """True when no packet is claimed by both classifiers.

    Conservative: only non-drop rules count as claiming traffic, and any
    possible per-field overlap is reported as non-disjoint.
    """
    left_claimed = claimed_matches(left)
    right_claimed = claimed_matches(right)
    for match_l in left_claimed:
        for match_r in right_claimed:
            if match_l.intersect(match_r) is not None:
                return False
    return True


def with_fallback(primary: Classifier, fallback: Classifier) -> Classifier:
    """Combine a policy with a default: ``if_(claimed(primary), primary, fallback)``.

    Packets inside the primary classifier's claimed flow space receive
    the primary's verdict (including its interior drops, which encode
    BGP-reachability restrictions); everything else is handled by the
    fallback.  Interior drop rules of the primary are rewritten so that
    *unclaimed* packets fall through them into the fallback: each drop
    rule is replaced by its intersections with the non-drop rules below
    it, which are exactly the claimed packets the drop rule shadows.
    """
    rules: List[Rule] = []
    primary_rules = primary.rules
    for index, rule in enumerate(primary_rules):
        if not rule.is_drop:
            rules.append(rule)
            continue
        for later in primary_rules[index + 1 :]:
            if later.is_drop:
                continue
            overlap = rule.match.intersect(later.match)
            if overlap is not None:
                rules.append(Rule(overlap, ()))
    rules.extend(fallback.rules)
    return Classifier(rules).optimized()
