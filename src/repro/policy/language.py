"""The SDX policy language: Pyretic-style predicates and policies.

Participants express forwarding intent as compositions of a small
algebra, exactly as in Section 3 of the paper::

    (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))

Semantics.  A policy is a function from a located packet to a *set* of
located packets: the empty set drops, a singleton forwards, several
packets multicast.  Predicates are policies too (filters): they return
``{packet}`` or ``{}``.

Every policy supports two evaluation routes, which the property tests
check against each other:

* :meth:`Policy.eval` — direct interpretation of the AST;
* :meth:`Policy.compile` — lowering to a :class:`~repro.policy.classifier.Classifier`
  (the rule table installed in switches).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.netutils.fields import normalize_match_value
from repro.policy.packet import Packet

__all__ = [
    "Policy",
    "Filter",
    "Match",
    "Union",
    "Intersection",
    "Negation",
    "TruePredicate",
    "FalsePredicate",
    "Modify",
    "Forward",
    "Drop",
    "Identity",
    "Sequential",
    "Parallel",
    "If",
    "drop",
    "identity",
    "false_",
    "fwd",
    "if_",
    "match",
    "modify",
    "parallel",
    "sequential",
    "true_",
    "union_match",
]


class Policy:
    """Base class of every policy AST node."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Interpret this policy on one located packet."""
        raise NotImplementedError

    def compile(self) -> Classifier:
        """Lower this policy to a prioritized rule table."""
        raise NotImplementedError

    def children(self) -> Sequence["Policy"]:
        """Immediate sub-policies (empty for leaves)."""
        return ()

    def reconstruct(self, children: Sequence["Policy"]) -> "Policy":
        """Rebuild this node with replacement children (for AST rewriting)."""
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def transform(self, visit: Callable[["Policy"], Optional["Policy"]]) -> "Policy":
        """Bottom-up AST rewrite.

        ``visit`` is called on each node after its children have been
        rewritten; returning ``None`` keeps the node, returning a policy
        replaces it.  The SDX compiler uses this to rewrite virtual
        ports into physical ports and VMAC matches.
        """
        new_children = [child.transform(visit) for child in self.children()]
        node = self.reconstruct(new_children) if new_children else self
        replacement = visit(node)
        return node if replacement is None else replacement

    def walk(self) -> Iterable["Policy"]:
        """Iterate this node and all descendants, depth-first."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- composition sugar ------------------------------------------------

    def __rshift__(self, other: "Policy") -> "Policy":
        return Sequential(self, other)

    def __add__(self, other: "Policy") -> "Policy":
        return Parallel(self, other)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        raise NotImplementedError


class Filter(Policy):
    """A predicate used as a policy: passes matching packets unchanged."""

    def test(self, packet: Packet) -> bool:
        """True when the packet satisfies the predicate."""
        raise NotImplementedError

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((packet,)) if self.test(packet) else frozenset()

    # -- boolean algebra ---------------------------------------------------

    def __and__(self, other: "Filter") -> "Filter":
        return Intersection(self, other)

    def __or__(self, other: "Filter") -> "Filter":
        return Union(self, other)

    def __invert__(self) -> "Filter":
        return Negation(self)


class TruePredicate(Filter):
    """Matches every packet (the identity filter)."""

    def test(self, packet: Packet) -> bool:
        return True

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, (Action.IDENTITY,))])

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return "true_"


class FalsePredicate(Filter):
    """Matches no packet (the drop filter)."""

    def test(self, packet: Packet) -> bool:
        return False

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, ())])

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return "false_"


class Match(Filter):
    """``match(field=value, ...)`` — conjunction of header constraints.

    A value may also be a set/list/tuple of alternatives, which expands
    to a disjunction, mirroring the paper's ``match(srcip={...})``.
    """

    def __init__(self, **constraints: Any) -> None:
        plain: dict = {}
        alternatives: List[Tuple[str, List[Any]]] = []
        for field, value in constraints.items():
            if isinstance(value, (set, frozenset, list, tuple)):
                options = sorted(
                    {normalize_match_value(field, v) for v in value},
                    key=repr,
                )
                if not options:
                    raise ValueError(f"empty alternative set for field {field!r}")
                alternatives.append((field, options))
            else:
                plain[field] = value
        base = HeaderMatch(plain)
        expanded: List[HeaderMatch] = []
        if alternatives:
            fields = [field for field, _ in alternatives]
            for combo in itertools.product(*(opts for _, opts in alternatives)):
                refined = base.intersect(HeaderMatch(dict(zip(fields, combo))))
                if refined is not None:
                    expanded.append(refined)
        else:
            expanded.append(base)
        self._matches: Tuple[HeaderMatch, ...] = tuple(expanded)

    @property
    def header_matches(self) -> Tuple[HeaderMatch, ...]:
        """The disjunction of header matches this predicate denotes."""
        return self._matches

    def test(self, packet: Packet) -> bool:
        return any(m.matches(packet) for m in self._matches)

    def compile(self) -> Classifier:
        """One pass rule per alternative match, drop otherwise."""
        rules = [Rule(m, (Action.IDENTITY,)) for m in self._matches]
        rules.append(Rule(HeaderMatch.ANY, ()))
        return Classifier(rules).optimized()

    def _key(self) -> Tuple:
        return (self._matches,)

    def __repr__(self) -> str:
        if len(self._matches) == 1:
            m = self._matches[0]
            inner = ", ".join(f"{k}={v}" for k, v in sorted(m.constraints.items()))
            return f"match({inner})"
        return f"match(<{len(self._matches)} alternatives>)"


class _BooleanCombinator(Filter):
    """Shared plumbing for AND/OR over predicate children."""

    _empty_is: bool

    def __init__(self, *predicates: Filter) -> None:
        flattened: List[Filter] = []
        for predicate in predicates:
            if not isinstance(predicate, Filter):
                raise TypeError(
                    f"{type(self).__name__} requires predicates, got {type(predicate).__name__}"
                )
            if type(predicate) is type(self):
                flattened.extend(predicate._predicates)  # type: ignore[attr-defined]
            else:
                flattened.append(predicate)
        self._predicates: Tuple[Filter, ...] = tuple(flattened)

    @property
    def predicates(self) -> Tuple[Filter, ...]:
        return self._predicates

    def children(self) -> Sequence[Policy]:
        return self._predicates

    def reconstruct(self, children: Sequence[Policy]) -> Policy:
        return type(self)(*children)  # type: ignore[arg-type]

    def _key(self) -> Tuple:
        return (self._predicates,)


class Union(_BooleanCombinator):
    """Disjunction of predicates (``p | q``)."""

    def test(self, packet: Packet) -> bool:
        return any(p.test(packet) for p in self._predicates)

    def compile(self) -> Classifier:
        """Union of the children's filter classifiers."""
        if not self._predicates:
            return FalsePredicate().compile()
        result = self._predicates[0].compile()
        for predicate in self._predicates[1:]:
            result = _filter_union(result, predicate.compile())
        return result

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(p) for p in self._predicates) + ")"


class Intersection(_BooleanCombinator):
    """Conjunction of predicates (``p & q``)."""

    def test(self, packet: Packet) -> bool:
        return all(p.test(packet) for p in self._predicates)

    def compile(self) -> Classifier:
        """Intersection of the children's filter classifiers."""
        if not self._predicates:
            return TruePredicate().compile()
        result = self._predicates[0].compile()
        for predicate in self._predicates[1:]:
            result = _filter_intersection(result, predicate.compile())
        return result

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(p) for p in self._predicates) + ")"


class Negation(Filter):
    """Complement of a predicate (``~p``)."""

    def __init__(self, predicate: Filter) -> None:
        if not isinstance(predicate, Filter):
            raise TypeError("~ requires a predicate")
        self._predicate = predicate

    @property
    def predicate(self) -> Filter:
        return self._predicate

    def children(self) -> Sequence[Policy]:
        return (self._predicate,)

    def reconstruct(self, children: Sequence[Policy]) -> Policy:
        (child,) = children
        return Negation(child)  # type: ignore[arg-type]

    def test(self, packet: Packet) -> bool:
        return not self._predicate.test(packet)

    def compile(self) -> Classifier:
        """Flip the inner classifier's pass/drop verdicts."""
        inner = self._predicate.compile()
        flipped = [
            Rule(rule.match, () if rule.actions else (Action.IDENTITY,))
            for rule in inner.rules
        ]
        flipped.append(Rule(HeaderMatch.ANY, (Action.IDENTITY,)))
        return Classifier(flipped).optimized()

    def _key(self) -> Tuple:
        return (self._predicate,)

    def __repr__(self) -> str:
        return f"~{self._predicate!r}"


class Modify(Policy):
    """``modify(field=value, ...)`` — rewrite headers, keep the location."""

    def __init__(self, **updates: Any) -> None:
        self._action = Action(updates)

    @property
    def action(self) -> Action:
        return self._action

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((self._action.apply(packet),))

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, (self._action,))])

    def _key(self) -> Tuple:
        return (self._action,)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._action.updates.items()))
        return f"modify({inner})"


class Forward(Policy):
    """``fwd(port)`` — move the packet to an output port."""

    def __init__(self, port: Any) -> None:
        self._port = port

    @property
    def port(self) -> Any:
        return self._port

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((packet.modify(port=self._port),))

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, (Action(port=self._port),))])

    def _key(self) -> Tuple:
        return (self._port,)

    def __repr__(self) -> str:
        return f"fwd({self._port!r})"


class Drop(Policy):
    """Discard every packet."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset()

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, ())])

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return "drop"


class Identity(Policy):
    """Pass every packet through unchanged."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((packet,))

    def compile(self) -> Classifier:
        return Classifier([Rule(HeaderMatch.ANY, (Action.IDENTITY,))])

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return "identity"


class _Combinator(Policy):
    """Shared plumbing for sequential/parallel composition."""

    def __init__(self, *policies: Policy) -> None:
        flattened: List[Policy] = []
        for policy in policies:
            if type(policy) is type(self):
                flattened.extend(policy._policies)  # type: ignore[attr-defined]
            else:
                flattened.append(policy)
        self._policies: Tuple[Policy, ...] = tuple(flattened)

    @property
    def policies(self) -> Tuple[Policy, ...]:
        return self._policies

    def children(self) -> Sequence[Policy]:
        return self._policies

    def reconstruct(self, children: Sequence[Policy]) -> Policy:
        return type(self)(*children)

    def _key(self) -> Tuple:
        return (self._policies,)


class Sequential(_Combinator):
    """``p >> q`` — feed every output packet of ``p`` into ``q``."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Thread the packet set through each stage in order."""
        packets: FrozenSet[Packet] = frozenset((packet,))
        for policy in self._policies:
            next_packets: Set[Packet] = set()
            for current in packets:
                next_packets |= policy.eval(current)
            packets = frozenset(next_packets)
            if not packets:
                break
        return packets

    def compile(self) -> Classifier:
        """Fold the children with classifier sequential composition."""
        if not self._policies:
            return Identity().compile()
        result = self._policies[0].compile()
        for policy in self._policies[1:]:
            result = result >> policy.compile()
        return result

    def __repr__(self) -> str:
        return "(" + " >> ".join(repr(p) for p in self._policies) + ")"


class Parallel(_Combinator):
    """``p + q`` — apply both policies to the packet and union the outputs."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Union of every child's outputs on the same packet."""
        out: Set[Packet] = set()
        for policy in self._policies:
            out |= policy.eval(packet)
        return frozenset(out)

    def compile(self) -> Classifier:
        """Fold the children with classifier parallel composition."""
        if not self._policies:
            return Drop().compile()
        result = self._policies[0].compile()
        for policy in self._policies[1:]:
            result = result + policy.compile()
        return result

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(p) for p in self._policies) + ")"


class If(Policy):
    """``if_(pred, then, else_)`` — branch on a predicate.

    Desugars to ``(pred >> then) + (~pred >> else_)``; the SDX runtime
    uses it to fall back to default BGP forwarding for traffic a
    participant's policy does not claim (Section 4.1).
    """

    def __init__(self, predicate: Filter, then: Policy, otherwise: Policy) -> None:
        if not isinstance(predicate, Filter):
            raise TypeError("if_ requires a predicate")
        self._predicate = predicate
        self._then = then
        self._otherwise = otherwise

    @property
    def predicate(self) -> Filter:
        return self._predicate

    @property
    def then(self) -> Policy:
        return self._then

    @property
    def otherwise(self) -> Policy:
        return self._otherwise

    def _desugared(self) -> Policy:
        return Parallel(
            Sequential(self._predicate, self._then),
            Sequential(Negation(self._predicate), self._otherwise),
        )

    def children(self) -> Sequence[Policy]:
        return (self._predicate, self._then, self._otherwise)

    def reconstruct(self, children: Sequence[Policy]) -> Policy:
        predicate, then, otherwise = children
        return If(predicate, then, otherwise)  # type: ignore[arg-type]

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Evaluate the branch the predicate selects."""
        if self._predicate.test(packet):
            return self._then.eval(packet)
        return self._otherwise.eval(packet)

    def compile(self) -> Classifier:
        """Compile via the ``(p >> t) + (~p >> e)`` desugaring."""
        return self._desugared().compile()

    def _key(self) -> Tuple:
        return (self._predicate, self._then, self._otherwise)

    def __repr__(self) -> str:
        return f"if_({self._predicate!r}, {self._then!r}, {self._otherwise!r})"


# -- classifier-level boolean helpers -------------------------------------


def _filter_union(left: Classifier, right: Classifier) -> Classifier:
    """Union of two *filter* classifiers (actions are identity or drop)."""
    crossed: List[Rule] = []
    for r1 in left.rules:
        for r2 in right.rules:
            overlap = r1.match.intersect(r2.match)
            if overlap is not None:
                crossed.append(Rule(overlap, r1.actions | r2.actions))
    return Classifier(crossed + left.rules + right.rules).optimized()


def _filter_intersection(left: Classifier, right: Classifier) -> Classifier:
    """Intersection of two *filter* classifiers."""
    crossed: List[Rule] = []
    for r1 in left.rules:
        for r2 in right.rules:
            overlap = r1.match.intersect(r2.match)
            if overlap is not None:
                actions = (Action.IDENTITY,) if (r1.actions and r2.actions) else ()
                crossed.append(Rule(overlap, actions))
    return Classifier(crossed).optimized()


# -- public constructors ----------------------------------------------------


def match(**constraints: Any) -> Match:
    """Build a match predicate: ``match(dstport=80, dstip="10.0.0.0/8")``."""
    return Match(**constraints)


def fwd(port: Any) -> Forward:
    """Forward to an output port: ``fwd("B1")``."""
    return Forward(port)


def modify(**updates: Any) -> Modify:
    """Rewrite header fields: ``modify(dstip="74.125.224.161")``."""
    return Modify(**updates)


def if_(predicate: Filter, then: Policy, otherwise: Policy) -> If:
    """Branch on a predicate with an else-clause."""
    return If(predicate, then, otherwise)


def sequential(*policies: Policy) -> Policy:
    """N-ary ``>>``; returns ``identity`` for no arguments."""
    if not policies:
        return identity
    if len(policies) == 1:
        return policies[0]
    return Sequential(*policies)


def parallel(*policies: Policy) -> Policy:
    """N-ary ``+``; returns ``drop`` for no arguments."""
    if not policies:
        return drop
    if len(policies) == 1:
        return policies[0]
    return Parallel(*policies)


def union_match(matches: Iterable[HeaderMatch]) -> Filter:
    """A predicate matching the union of pre-built header matches."""
    matches = list(matches)
    if not matches:
        return false_
    predicate: Filter = _from_header_match(matches[0])
    for header_match in matches[1:]:
        predicate = predicate | _from_header_match(header_match)
    return predicate


def _from_header_match(header_match: HeaderMatch) -> Filter:
    if header_match.is_universal:
        return true_
    return Match(**dict(header_match.constraints))


drop = Drop()
identity = Identity()
true_ = TruePredicate()
false_ = FalsePredicate()
