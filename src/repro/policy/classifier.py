"""Prioritized rule lists — the compile target of the policy language.

A :class:`Classifier` is an ordered list of :class:`Rule` objects, each
pairing a :class:`HeaderMatch` with a set of :class:`Action` rewrites.
This is exactly the intermediate representation the Pyretic runtime
lowers policies into before emitting OpenFlow rules, and it is the
object whose *size* the paper's Figures 7 and 9 measure.

The two composition algorithms implemented here (parallel and
sequential rule-level composition with action commutation) follow
Monsanto et al., "Composing Software-Defined Networks" (NSDI 2013).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.netutils.fields import (
    FIELDS,
    match_value_covers,
    match_values_intersect,
    normalize_match_value,
    normalize_packet_value,
    value_satisfies_match,
)
from repro.policy.packet import Packet

__all__ = ["Action", "Classifier", "HeaderMatch", "Rule", "sequence_rule"]


class HeaderMatch:
    """A conjunction of per-field constraints (an OpenFlow-style match).

    An empty :class:`HeaderMatch` matches every packet.  IP-field
    constraints are CIDR prefixes; all other fields match exactly.
    """

    __slots__ = ("_constraints", "_hash")

    ANY: "HeaderMatch"

    def __init__(self, constraints: Optional[Mapping[str, Any]] = None, **kwargs: Any) -> None:
        merged: Dict[str, Any] = {}
        if constraints:
            merged.update(constraints)
        merged.update(kwargs)
        normalized: Dict[str, Any] = {}
        for field, value in merged.items():
            if field not in FIELDS:
                raise ValueError(f"unknown header field {field!r}")
            normalized[field] = normalize_match_value(field, value)
        self._constraints = normalized
        self._hash: Optional[int] = None

    @property
    def constraints(self) -> Mapping[str, Any]:
        """Read-only view of the per-field constraints."""
        return dict(self._constraints)

    @property
    def is_universal(self) -> bool:
        """True when the match constrains nothing (matches all packets)."""
        return not self._constraints

    def fields(self) -> FrozenSet[str]:
        """The set of constrained field names."""
        return frozenset(self._constraints)

    def constraint(self, field: str) -> Any:
        """The constraint on one field, or ``None`` when unconstrained."""
        return self._constraints.get(field)

    def matches(self, packet: Packet) -> bool:
        """True when ``packet`` satisfies every constraint."""
        for field, constraint in self._constraints.items():
            if not value_satisfies_match(field, packet.get(field), constraint):
                return False
        return True

    def intersect(self, other: "HeaderMatch") -> Optional["HeaderMatch"]:
        """The conjunction of two matches, or ``None`` when unsatisfiable."""
        constraints = dict(self._constraints)
        for field, value in other._constraints.items():
            if field in constraints:
                merged = match_values_intersect(field, constraints[field], value)
                if merged is None:
                    return None
                constraints[field] = merged
            else:
                constraints[field] = value
        return HeaderMatch(constraints)

    def covers(self, other: "HeaderMatch") -> bool:
        """True when every packet matching ``other`` also matches ``self``."""
        for field, general in self._constraints.items():
            if field not in other._constraints:
                return False
            if not match_value_covers(field, general, other._constraints[field]):
                return False
        return True

    def disjoint_from(self, other: "HeaderMatch") -> bool:
        """True when no packet can satisfy both matches.

        Conservative: returns False whenever an overlap cannot be ruled
        out from the per-field constraints alone.
        """
        return self.intersect(other) is None

    def restrict(self, field: str, value: Any) -> Optional["HeaderMatch"]:
        """Shorthand for intersecting with a single-field match."""
        return self.intersect(HeaderMatch({field: value}))

    def without(self, *fields: str) -> "HeaderMatch":
        """Copy of this match with the given field constraints removed."""
        return HeaderMatch(
            {f: v for f, v in self._constraints.items() if f not in fields}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeaderMatch):
            return NotImplemented
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._constraints.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._constraints:
            return "HeaderMatch(*)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._constraints.items()))
        return f"HeaderMatch({inner})"


HeaderMatch.ANY = HeaderMatch()


class Action:
    """A header rewrite: a partial map of fields to new values.

    The special ``port`` field sets the packet's output location, so
    ``Action(port="B1")`` is a plain forward and ``Action()`` is the
    identity (emit unchanged).  A rule whose action *set* is empty drops.
    """

    __slots__ = ("_updates", "_hash")

    IDENTITY: "Action"

    def __init__(self, updates: Optional[Mapping[str, Any]] = None, **kwargs: Any) -> None:
        merged: Dict[str, Any] = {}
        if updates:
            merged.update(updates)
        merged.update(kwargs)
        normalized: Dict[str, Any] = {}
        for field, value in merged.items():
            if field not in FIELDS:
                raise ValueError(f"unknown header field {field!r}")
            normalized[field] = normalize_packet_value(field, value)
        self._updates = normalized
        self._hash: Optional[int] = None

    @property
    def updates(self) -> Mapping[str, Any]:
        """Read-only view of the field assignments."""
        return dict(self._updates)

    @property
    def is_identity(self) -> bool:
        return not self._updates

    @property
    def output_port(self) -> Any:
        """The port this action sends to, or ``None`` if it keeps the location."""
        return self._updates.get("port")

    def get(self, field: str, default: Any = None) -> Any:
        return self._updates.get(field, default)

    def apply(self, packet: Packet) -> Packet:
        """Apply the rewrites to ``packet``, returning the new packet."""
        if not self._updates:
            return packet
        return packet.modify(**self._updates)

    def then(self, later: "Action") -> "Action":
        """Compose sequentially: apply ``self`` first, then ``later``.

        Later assignments override earlier ones field-by-field.
        """
        merged = dict(self._updates)
        merged.update(later._updates)
        return Action(merged)

    def commute_match(self, match: "HeaderMatch") -> Optional["HeaderMatch"]:
        """Pull ``match`` backwards through this rewrite.

        Returns the weakest pre-condition ``m`` such that a packet
        satisfies ``m`` iff applying this action to it yields a packet
        satisfying ``match`` — or ``None`` when no packet can reach
        ``match`` through this action.
        """
        surviving: Dict[str, Any] = {}
        for field, constraint in match.constraints.items():
            if field in self._updates:
                if not value_satisfies_match(field, self._updates[field], constraint):
                    return None
                # constraint is guaranteed by the rewrite: drop it.
            else:
                surviving[field] = constraint
        return HeaderMatch(surviving)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Action):
            return NotImplemented
        return self._updates == other._updates

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._updates.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._updates:
            return "Action(identity)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._updates.items()))
        return f"Action({inner})"


Action.IDENTITY = Action()


class Rule:
    """One prioritized entry: when ``match`` fires, emit one packet per action."""

    __slots__ = ("match", "actions")

    def __init__(self, match: HeaderMatch, actions: Iterable[Action] = ()) -> None:
        self.match = match
        self.actions: FrozenSet[Action] = frozenset(actions)

    @property
    def is_drop(self) -> bool:
        return not self.actions

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Apply the rule's actions to a packet known to match."""
        return frozenset(action.apply(packet) for action in self.actions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.match == other.match and self.actions == other.actions

    def __hash__(self) -> int:
        return hash((self.match, self.actions))

    def __repr__(self) -> str:
        if self.is_drop:
            return f"Rule({self.match!r} -> drop)"
        acts = ", ".join(repr(a) for a in sorted(self.actions, key=repr))
        return f"Rule({self.match!r} -> [{acts}])"


class Classifier:
    """An ordered rule list with Pyretic composition semantics.

    Rules are checked top-down; the first matching rule's actions apply
    and later rules are ignored.  A packet matching no rule is dropped.

    Classifiers compose::

        c1 + c2    # parallel: union of both outputs
        c1 >> c2   # sequential: feed c1's outputs into c2
    """

    __slots__ = ("rules",)

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self.rules: List[Rule] = list(rules)

    # -- interpretation ------------------------------------------------

    def first_match(self, packet: Packet) -> Optional[Rule]:
        """The highest-priority rule matching ``packet``, if any."""
        for rule in self.rules:
            if rule.match.matches(packet):
                return rule
        return None

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """Interpret the classifier on one packet."""
        rule = self.first_match(packet)
        if rule is None:
            return frozenset()
        return rule.eval(packet)

    # -- composition ---------------------------------------------------

    def __add__(self, other: "Classifier") -> "Classifier":
        """Parallel composition: a packet's output is the union of both sides.

        Cross rules (pairwise intersections) come first in (i, j) order,
        followed by each side's own rules to cover packets the other side
        misses entirely.
        """
        crossed: List[Rule] = []
        for r1 in self.rules:
            for r2 in other.rules:
                overlap = r1.match.intersect(r2.match)
                if overlap is not None:
                    crossed.append(Rule(overlap, r1.actions | r2.actions))
        combined = crossed + self.rules + other.rules
        return Classifier(combined).optimized()

    def __rshift__(self, other: "Classifier") -> "Classifier":
        """Sequential composition: outputs of ``self`` are processed by ``other``."""
        out: List[Rule] = []
        for r1 in self.rules:
            out.extend(sequence_rule(r1, lambda action: other))
        return Classifier(out).optimized()

    # -- optimization ---------------------------------------------------

    #: Per-bucket cap on the linear coverage scan for IP-bearing matches.
    SHADOW_SCAN_LIMIT = 4000

    def optimized(self) -> "Classifier":
        """Remove rules that can never fire (single-rule shadow elimination).

        A rule is dead when an earlier single rule's match covers it.
        This mirrors the shadow-elimination pass Pyretic applies before
        installing rules, and it is what keeps composed rule tables near
        the minimal size the paper reports.

        Matches are bucketed by their constrained field set: an earlier
        match can only cover a later one when its fields are a subset of
        the later match's fields.  Within a bucket whose fields all
        compare exactly (no CIDR prefixes), coverage degenerates to
        equality of the later match's restriction — a hash lookup — so
        the pass is near-linear on the classifiers the SDX compiler
        produces.  Buckets containing IP-prefix constraints fall back to
        a linear scan, capped by :data:`SHADOW_SCAN_LIMIT` (skipping the
        check is sound; it only leaves dead rules in place).
        """
        kept: List[Rule] = []
        # field-set -> (hash set of matches, bucket has ip-prefix fields,
        #               insertion-ordered matches for the scan fallback)
        buckets: Dict[FrozenSet[str], Tuple[set, bool, List[HeaderMatch]]] = {}
        for rule in self.rules:
            match = rule.match
            fields = match.fields()
            covered = False
            for bucket_fields, (matches_set, has_ip, matches_list) in buckets.items():
                if not bucket_fields <= fields:
                    continue
                if not has_ip:
                    if bucket_fields == fields:
                        probe = match
                    else:
                        constraints = match.constraints
                        probe = HeaderMatch(
                            {field: constraints[field] for field in bucket_fields}
                        )
                    if probe in matches_set:
                        covered = True
                        break
                elif len(matches_list) <= self.SHADOW_SCAN_LIMIT:
                    if any(earlier.covers(match) for earlier in matches_list):
                        covered = True
                        break
            if covered:
                continue
            kept.append(rule)
            bucket = buckets.get(fields)
            if bucket is None:
                bucket = (set(), bool(fields & {"srcip", "dstip"}), [])
                buckets[fields] = bucket
            bucket[0].add(match)
            bucket[2].append(match)
        # Trailing drop rules are implicit (no-match means drop).
        while kept and kept[-1].is_drop and kept[-1].match.is_universal:
            kept.pop()
        return Classifier(kept)

    # -- plumbing --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __getitem__(self, index: int) -> Rule:
        return self.rules[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Classifier):
            return NotImplemented
        return self.rules == other.rules

    def __repr__(self) -> str:
        body = "\n  ".join(repr(rule) for rule in self.rules)
        return f"Classifier(\n  {body}\n)" if self.rules else "Classifier(empty)"


def _parallel_partial(
    left: List[Tuple[HeaderMatch, FrozenSet[Action]]],
    right: List[Tuple[HeaderMatch, FrozenSet[Action]]],
) -> List[Tuple[HeaderMatch, FrozenSet[Action]]]:
    """Parallel-union of two *partial* rule lists (no implicit drop)."""
    crossed: List[Tuple[HeaderMatch, FrozenSet[Action]]] = []
    for match1, actions1 in left:
        for match2, actions2 in right:
            overlap = match1.intersect(match2)
            if overlap is not None:
                crossed.append((overlap, actions1 | actions2))
    return crossed + left + right


def sequence_rule(
    rule: Rule,
    downstream_for: "Callable[[Action], Optional[Classifier]]",
) -> List[Rule]:
    """Compose a single rule with per-action downstream classifiers.

    ``downstream_for`` maps each of the rule's actions to the classifier
    its output should flow through (``None`` meaning drop).  Plain
    sequential composition passes a constant function; the SDX compiler
    passes a per-output-port index, which skips the rules of every
    participant the action cannot reach — the Section 4.3.1
    "most policies concern a subset of the participants" optimization.

    The produced rule list is *total* over ``rule.match`` (it ends in an
    explicit drop) so that packets matching ``rule`` never leak to rules
    that sat below it in the upstream classifier.
    """
    if rule.is_drop:
        return [rule]

    per_action: List[List[Tuple[HeaderMatch, FrozenSet[Action]]]] = []
    for action in rule.actions:
        branch: List[Tuple[HeaderMatch, FrozenSet[Action]]] = []
        downstream = downstream_for(action)
        for r2 in downstream.rules if downstream is not None else ():
            precondition = action.commute_match(r2.match)
            if precondition is None:
                continue
            scoped = rule.match.intersect(precondition)
            if scoped is None:
                continue
            merged = frozenset(action.then(a2) for a2 in r2.actions)
            branch.append((scoped, merged))
        per_action.append(branch)

    combined = per_action[0]
    for branch in per_action[1:]:
        combined = _parallel_partial(combined, branch)

    rules = [Rule(match, actions) for match, actions in combined]
    rules.append(Rule(rule.match, ()))  # seal the region: matched upstream, dropped downstream
    return rules
