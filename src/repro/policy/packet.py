"""Located packets — the values SDX policies transform.

Following Pyretic, a *located packet* is a packet plus its location (the
``switch`` and ``port`` header fields).  A policy maps one located
packet to a set of located packets: the empty set drops, a singleton
forwards, a larger set multicasts.

Packets are immutable; :meth:`Packet.modify` returns a new packet.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from repro.netutils.fields import FIELDS, normalize_packet_value

__all__ = ["Packet"]


class Packet(Mapping[str, Any]):
    """An immutable located packet: a mapping of header-field names to values.

    Only fields registered in :data:`repro.netutils.fields.FIELDS` are
    accepted; values are normalized on construction (e.g. ``"10.0.0.1"``
    becomes an :class:`~repro.netutils.ip.IPv4Address`).

    Example::

        >>> pkt = Packet(srcip="10.0.0.1", dstip="8.8.8.8", dstport=80, port="A1")
        >>> pkt["dstport"]
        80
        >>> pkt.modify(port="B")["port"]
        'B'
    """

    __slots__ = ("_headers", "_hash")

    def __init__(self, headers: Optional[Mapping[str, Any]] = None, **kwargs: Any) -> None:
        merged: Dict[str, Any] = {}
        if headers:
            merged.update(headers)
        merged.update(kwargs)
        normalized: Dict[str, Any] = {}
        for field, value in merged.items():
            if field not in FIELDS:
                raise ValueError(f"unknown header field {field!r}")
            value = normalize_packet_value(field, value)
            if value is not None:
                normalized[field] = value
        object.__setattr__(self, "_headers", normalized)
        object.__setattr__(self, "_hash", None)

    def modify(self, **updates: Any) -> "Packet":
        """Return a copy with the given header fields rewritten.

        Passing ``field=None`` removes the field.
        """
        headers = dict(self._headers)
        for field, value in updates.items():
            if field not in FIELDS:
                raise ValueError(f"unknown header field {field!r}")
            if value is None:
                headers.pop(field, None)
            else:
                headers[field] = normalize_packet_value(field, value)
        return Packet(headers)

    @property
    def location(self) -> Any:
        """The packet's current port (its location in the fabric)."""
        return self._headers.get("port")

    def __getitem__(self, field: str) -> Any:
        return self._headers[field]

    def get(self, field: str, default: Any = None) -> Any:
        return self._headers.get(field, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._headers)

    def __len__(self) -> int:
        return len(self._headers)

    def __contains__(self, field: object) -> bool:
        return field in self._headers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self._headers == other._headers

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._headers.items()))
            )
        return self._hash

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Packet is immutable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._headers.items()))
        return f"Packet({inner})"
