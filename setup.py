"""Setup shim: enables legacy editable installs in offline environments.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 660 editable installs are unavailable;
``pip install -e . --no-build-isolation`` falls back to this file.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
