# Convenience targets for the SDX reproduction.

PYTHON ?= python

.PHONY: install test property integration chaos bench bench-guard guard-gate bench-compile compile-gate bench-latency latency-gate bench-churn churn-gate churn-replay bench-federation experiments quick examples metrics verify-fuzz clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

property:
	$(PYTHON) -m pytest tests/property/

integration:
	$(PYTHON) -m pytest tests/integration/

chaos:
	$(PYTHON) -m pytest -m chaos tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-guard:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_guard.py --emit benchmarks/BENCH_robustness.json

guard-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_guard.py --check benchmarks/BENCH_robustness.json

bench-compile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_compile.py --emit benchmarks/BENCH_compile.json

compile-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_compile.py --check benchmarks/BENCH_compile.json

bench-federation:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_federation.py

bench-latency:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_latency.py --emit benchmarks/BENCH_latency.json

latency-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_latency.py --check benchmarks/BENCH_latency.json

bench-churn:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_churn.py --emit benchmarks/BENCH_churn.json

churn-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_churn.py --check benchmarks/BENCH_churn.json

churn-replay:
	PYTHONPATH=src REPRO_RUNTIME=eventloop $(PYTHON) -m repro.workloads \
		--fixture ixp_small --scenario failover-storm --scenario stuck-routes \
		--scenario correlated-withdrawal

experiments:
	$(PYTHON) -m repro.experiments all

quick:
	$(PYTHON) -m repro.experiments all --quick

metrics:
	PYTHONPATH=src $(PYTHON) -m repro.telemetry

verify-fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.verify.fuzz --seeds 6

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
